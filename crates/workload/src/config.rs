//! Workload parameterization (Table 1) and arrival-rate derivation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::pex::PexModel;
use crate::service::ServiceVariability;
use crate::shape::GlobalShape;

/// The uniform slack range `[Smin, Smax]` of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlackRange {
    /// `Smin`.
    pub min: f64,
    /// `Smax`.
    pub max: f64,
}

impl SlackRange {
    /// The Table 1 baseline `[0.25, 2.5]`.
    pub const BASELINE: SlackRange = SlackRange {
        min: 0.25,
        max: 2.5,
    };

    /// The §5.2 PSP baseline `[1.25, 5.0]`.
    pub const PSP_BASELINE: SlackRange = SlackRange {
        min: 1.25,
        max: 5.0,
    };

    /// A new range; validated by [`WorkloadConfig::validate`].
    pub fn new(min: f64, max: f64) -> SlackRange {
        SlackRange { min, max }
    }

    /// The mean of the uniform distribution.
    pub fn mean(&self) -> f64 {
        0.5 * (self.min + self.max)
    }

    /// Both endpoints multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> SlackRange {
        SlackRange {
            min: self.min * factor,
            max: self.max * factor,
        }
    }
}

/// Error returned for invalid workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A parameter outside its valid domain.
    OutOfRange {
        /// Parameter name.
        what: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Parallel fan width exceeds the node count (distinct-node draws
    /// impossible).
    FanWiderThanNodes {
        /// Requested fan width.
        fan: usize,
        /// Available nodes.
        nodes: usize,
    },
    /// A per-node vector entry (`local_weights`, `node_speeds`, …)
    /// outside its domain — reports *which* entry so the error is
    /// actionable.
    InvalidEntry {
        /// Which vector parameter.
        what: &'static str,
        /// Index of the first offending entry.
        index: usize,
        /// Human-readable constraint.
        constraint: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                what,
                constraint,
                value,
            } => write!(f, "{what} must satisfy {constraint}, got {value}"),
            ConfigError::FanWiderThanNodes { fan, nodes } => write!(
                f,
                "parallel fan of {fan} subtasks needs {fan} distinct nodes but only {nodes} exist"
            ),
            ConfigError::InvalidEntry {
                what,
                index,
                constraint,
                value,
            } => write!(f, "{what}[{index}] must satisfy {constraint}, got {value}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Arrival rates derived from `(load, frac_local)` per §4.1:
///
/// ```text
/// load = (λ_global · E[W_global] + k · λ_local · E[ex_local]) / k
/// frac_local = k · λ_local · E[ex_local] / (k · load)
/// ```
///
/// Solved for the rates:
///
/// ```text
/// λ_local (per node) = load · frac_local / E[ex_local]
/// λ_global (system)  = load · k · (1 − frac_local) / E[W_global]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedRates {
    /// Poisson rate of local tasks at **each** node.
    pub lambda_local_per_node: f64,
    /// Poisson rate of the single system-wide global task stream.
    pub lambda_global: f64,
    /// Expected total work (summed `ex`) of one global task.
    pub expected_global_work: f64,
    /// Expected work per unit time contributed by local tasks (all
    /// nodes).
    pub local_work_rate: f64,
    /// Expected work per unit time contributed by global tasks.
    pub global_work_rate: f64,
}

impl DerivedRates {
    /// The realized normalized load (should equal the configured one).
    pub fn load(&self, nodes: usize) -> f64 {
        (self.local_work_rate + self.global_work_rate) / nodes as f64
    }
}

/// Full workload parameterization — Table 1 plus the §4.3/§5/§6
/// extensions.
///
/// Time is relativized to the mean local execution time, as in the paper
/// (`μ_local = 1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of homogeneous nodes `k`.
    pub nodes: usize,
    /// Normalized system load in `(0, 1)`.
    pub load: f64,
    /// Fraction of load contributed by local tasks, in `[0, 1]`.
    pub frac_local: f64,
    /// Mean execution time of local tasks (`1/μ_local`; baseline 1.0).
    pub mean_local_ex: f64,
    /// Mean execution time of each global subtask (`1/μ_subtask`;
    /// baseline 1.0).
    pub mean_subtask_ex: f64,
    /// Uniform slack range `[Smin, Smax]` for **local** tasks, and the
    /// base range that global slack is derived from.
    pub slack: SlackRange,
    /// Relative flexibility of global tasks vs local tasks (baseline 1.0).
    pub rel_flex: f64,
    /// Structure of global tasks.
    pub shape: GlobalShape,
    /// Prediction model for subtask execution times.
    pub pex: PexModel,
    /// Shape of the execution-time distributions (both classes);
    /// baseline exponential, CV² = 1.
    pub service: ServiceVariability,
    /// Optional per-node weights for local arrivals (the §4.3
    /// "some nodes had higher local task loads" extension). Uniform when
    /// `None`; otherwise must have one non-negative weight per node with
    /// a positive sum. The *total* local rate is preserved.
    pub local_weights: Option<Vec<f64>>,
    /// Optional per-node **speed factors** (heterogeneous hardware).
    /// `None` means every node runs at speed 1 (the paper's homogeneous
    /// model); otherwise one strictly positive finite factor per node,
    /// and every task served at node `i` takes `ex / node_speeds[i]` time
    /// units. Execution-time *predictions* scale identically, so deadline
    /// assignment sees the node-local service times. Offered work is
    /// unchanged — speeds skew per-node utilization (a node at speed `s`
    /// carries `1/s` times the time-load of a speed-1 node), which is
    /// exactly the heterogeneity axis the network-aware experiments
    /// sweep.
    pub node_speeds: Option<Vec<f64>>,
    /// The arrival-process family every task stream draws from
    /// (default [`ArrivalProcess::Poisson`], the paper's stationary
    /// model — bit-identical to the pre-existing sampling path). The
    /// non-stationary variants keep the configured mean rate, so `load`
    /// remains the *time-average* load while instantaneous load varies:
    /// MMPP bursts and phased overload transients are exactly the
    /// regimes the feedback-adaptive strategies react to.
    pub arrivals: ArrivalProcess,
}

impl WorkloadConfig {
    /// The Table 1 baseline: `k = 6`, `m = 4` serial subtasks,
    /// `load = 0.5`, `frac_local = 0.75`, slack `U[0.25, 2.5]`,
    /// `rel_flex = 1`, perfect prediction.
    pub fn baseline() -> WorkloadConfig {
        WorkloadConfig {
            nodes: 6,
            load: 0.5,
            frac_local: 0.75,
            mean_local_ex: 1.0,
            mean_subtask_ex: 1.0,
            slack: SlackRange::BASELINE,
            rel_flex: 1.0,
            shape: GlobalShape::Serial { m: 4 },
            pex: PexModel::Perfect,
            service: ServiceVariability::Exponential,
            local_weights: None,
            node_speeds: None,
            arrivals: ArrivalProcess::Poisson,
        }
    }

    /// The §5.2 PSP baseline: same as [`baseline`](Self::baseline) but
    /// global tasks are parallel fans of 4 subtasks on distinct nodes and
    /// both classes draw slack from `U[1.25, 5.0]`.
    pub fn psp_baseline() -> WorkloadConfig {
        WorkloadConfig {
            slack: SlackRange::PSP_BASELINE,
            shape: GlobalShape::Parallel { m: 4 },
            ..WorkloadConfig::baseline()
        }
    }

    /// A §6 serial-parallel baseline: pipelines of 2 serial stages × 3
    /// parallel branches, PSP slack range.
    pub fn combined_baseline() -> WorkloadConfig {
        WorkloadConfig {
            slack: SlackRange::PSP_BASELINE,
            shape: GlobalShape::SerialParallel {
                stages: 2,
                branches: 3,
            },
            ..WorkloadConfig::baseline()
        }
    }

    /// Checks every parameter's domain.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn check(
            what: &'static str,
            ok: bool,
            constraint: &'static str,
            value: f64,
        ) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange {
                    what,
                    constraint,
                    value,
                })
            }
        }
        check("nodes", self.nodes >= 1, "≥ 1", self.nodes as f64)?;
        check(
            "load",
            self.load > 0.0 && self.load < 1.0 && self.load.is_finite(),
            "0 < load < 1",
            self.load,
        )?;
        check(
            "frac_local",
            (0.0..=1.0).contains(&self.frac_local),
            "0 ≤ frac_local ≤ 1",
            self.frac_local,
        )?;
        check(
            "mean_local_ex",
            self.mean_local_ex > 0.0 && self.mean_local_ex.is_finite(),
            "> 0",
            self.mean_local_ex,
        )?;
        check(
            "mean_subtask_ex",
            self.mean_subtask_ex > 0.0 && self.mean_subtask_ex.is_finite(),
            "> 0",
            self.mean_subtask_ex,
        )?;
        check(
            "slack.min",
            self.slack.min >= 0.0 && self.slack.min.is_finite(),
            "≥ 0",
            self.slack.min,
        )?;
        check(
            "slack range",
            self.slack.max >= self.slack.min && self.slack.max.is_finite(),
            "max ≥ min",
            self.slack.max,
        )?;
        check(
            "rel_flex",
            self.rel_flex > 0.0 && self.rel_flex.is_finite(),
            "> 0",
            self.rel_flex,
        )?;
        if self.service.build(1.0).is_err() {
            return Err(ConfigError::OutOfRange {
                what: "service distribution",
                constraint: "valid shape parameters",
                value: f64::NAN,
            });
        }
        // Shape parameters are multi-field; report the first offending
        // field as an indexed entry (field order = declaration order) so
        // the error names exactly which knob is degenerate. A zero stage
        // count, width or depth used to slip through some construction
        // paths as a later divide-by-zero or an empty-task panic deep in
        // the generator.
        fn entry(
            what: &'static str,
            index: usize,
            ok: bool,
            constraint: &'static str,
            value: f64,
        ) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::InvalidEntry {
                    what,
                    index,
                    constraint,
                    value,
                })
            }
        }
        match self.shape {
            GlobalShape::Serial { m } => {
                entry("shape.serial", 0, m >= 1, "≥ 1", m as f64)?;
            }
            GlobalShape::Parallel { m } => {
                entry("shape.parallel", 0, m >= 1, "≥ 1", m as f64)?;
                if m > self.nodes {
                    return Err(ConfigError::FanWiderThanNodes {
                        fan: m,
                        nodes: self.nodes,
                    });
                }
            }
            GlobalShape::SerialRandomM { min_m, max_m } => {
                entry("shape.serial_random_m", 0, min_m >= 1, "≥ 1", min_m as f64)?;
                entry(
                    "shape.serial_random_m",
                    1,
                    max_m >= min_m,
                    "≥ min_m",
                    max_m as f64,
                )?;
            }
            GlobalShape::SerialParallel { stages, branches } => {
                entry(
                    "shape.serial_parallel",
                    0,
                    stages >= 1,
                    "≥ 1",
                    stages as f64,
                )?;
                entry(
                    "shape.serial_parallel",
                    1,
                    branches >= 1,
                    "≥ 1",
                    branches as f64,
                )?;
                if branches > self.nodes {
                    return Err(ConfigError::FanWiderThanNodes {
                        fan: branches,
                        nodes: self.nodes,
                    });
                }
            }
            GlobalShape::Dag {
                depth,
                max_width,
                edge_density,
            } => {
                entry("shape.dag", 0, depth >= 1, "≥ 1", depth as f64)?;
                entry("shape.dag", 1, max_width >= 1, "≥ 1", max_width as f64)?;
                entry(
                    "shape.dag",
                    2,
                    edge_density.is_finite() && (0.0..=1.0).contains(&edge_density),
                    "finite and in [0, 1]",
                    edge_density,
                )?;
                if max_width > self.nodes {
                    return Err(ConfigError::FanWiderThanNodes {
                        fan: max_width,
                        nodes: self.nodes,
                    });
                }
            }
        }
        if let Some(w) = &self.local_weights {
            check(
                "local_weights length",
                w.len() == self.nodes,
                "one weight per node",
                w.len() as f64,
            )?;
            if let Some((i, &bad)) = w
                .iter()
                .enumerate()
                .find(|(_, x)| !(x.is_finite() && **x >= 0.0))
            {
                return Err(ConfigError::InvalidEntry {
                    what: "local_weights",
                    index: i,
                    constraint: "finite and ≥ 0",
                    value: bad,
                });
            }
            check(
                "local_weights sum",
                w.iter().sum::<f64>() > 0.0,
                "> 0",
                w.iter().sum::<f64>(),
            )?;
        }
        self.arrivals.validate()?;
        if let Some(s) = &self.node_speeds {
            check(
                "node_speeds length",
                s.len() == self.nodes,
                "one speed per node",
                s.len() as f64,
            )?;
            if let Some((i, &bad)) = s
                .iter()
                .enumerate()
                .find(|(_, x)| !(x.is_finite() && **x > 0.0))
            {
                return Err(ConfigError::InvalidEntry {
                    what: "node_speeds",
                    index: i,
                    constraint: "finite and > 0",
                    value: bad,
                });
            }
        }
        Ok(())
    }

    /// Derives the Poisson arrival rates from `(load, frac_local)` per
    /// the §4.1 formulas (see [`DerivedRates`]).
    ///
    /// # Errors
    ///
    /// Validates the configuration first.
    pub fn rates(&self) -> Result<DerivedRates, ConfigError> {
        self.validate()?;
        let k = self.nodes as f64;
        let expected_global_work = self.shape.expected_subtasks() * self.mean_subtask_ex;
        let lambda_local_per_node = self.load * self.frac_local / self.mean_local_ex;
        let global_work_rate = self.load * k * (1.0 - self.frac_local);
        let lambda_global = if self.frac_local >= 1.0 {
            0.0
        } else {
            global_work_rate / expected_global_work
        };
        Ok(DerivedRates {
            lambda_local_per_node,
            lambda_global,
            expected_global_work,
            local_work_rate: lambda_local_per_node * self.mean_local_ex * k,
            global_work_rate,
        })
    }

    /// The slack-scaling factor applied to global task slack draws.
    ///
    /// * Serial shapes: `rel_flex · E[total work]/E[local ex]` — makes the
    ///   classes' mean flexibility ratio exactly `rel_flex` (the paper's
    ///   "same average flexibility" at 1.0, §4.2.1).
    /// * Flat parallel fans: `1.0` — §5.2's formula (2) adds slack drawn
    ///   from the *same* distribution as the locals', unscaled.
    /// * Serial-parallel pipelines: `rel_flex · E[critical path]/E[local
    ///   ex]`, the natural generalization (deadline generation is also
    ///   critical-path-based).
    /// * Layered DAGs: `rel_flex · E[depth]/E[local ex]` in expectation —
    ///   per task the factor uses the task's *own* structural depth (see
    ///   [`TaskFactory::make_global_dag`](crate::TaskFactory::make_global_dag)),
    ///   mirroring how heterogeneous-`m` serial tasks scale by their own
    ///   stage count.
    pub fn global_slack_factor(&self) -> f64 {
        match self.shape {
            GlobalShape::Serial { .. } | GlobalShape::SerialRandomM { .. } => {
                self.rel_flex * self.shape.expected_subtasks() * self.mean_subtask_ex
                    / self.mean_local_ex
            }
            GlobalShape::Parallel { .. } => 1.0,
            GlobalShape::SerialParallel { .. } => {
                self.rel_flex * self.shape.expected_critical_path_factor() * self.mean_subtask_ex
                    / self.mean_local_ex
            }
            GlobalShape::Dag { depth, .. } => {
                self.rel_flex * depth as f64 * self.mean_subtask_ex / self.mean_local_ex
            }
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let c = WorkloadConfig::baseline();
        assert_eq!(c.nodes, 6);
        assert_eq!(c.load, 0.5);
        assert_eq!(c.frac_local, 0.75);
        assert_eq!(c.slack, SlackRange::new(0.25, 2.5));
        assert_eq!(c.rel_flex, 1.0);
        assert_eq!(c.shape, GlobalShape::Serial { m: 4 });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn baseline_rates_close_the_load_equation() {
        let c = WorkloadConfig::baseline();
        let r = c.rates().unwrap();
        // λ_local = 0.5·0.75/1 = 0.375 per node.
        assert!((r.lambda_local_per_node - 0.375).abs() < 1e-12);
        // λ_global = 0.5·6·0.25/4 = 0.1875.
        assert!((r.lambda_global - 0.1875).abs() < 1e-12);
        assert!((r.load(c.nodes) - c.load).abs() < 1e-12);
        assert_eq!(r.expected_global_work, 4.0);
    }

    #[test]
    fn frac_local_extremes() {
        let mut c = WorkloadConfig::baseline();
        c.frac_local = 1.0;
        let r = c.rates().unwrap();
        assert_eq!(r.lambda_global, 0.0);
        assert!((r.load(c.nodes) - 0.5).abs() < 1e-12);

        c.frac_local = 0.0;
        let r = c.rates().unwrap();
        assert_eq!(r.lambda_local_per_node, 0.0);
        assert!((r.load(c.nodes) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn psp_baseline_uses_wider_slack_and_fans() {
        let c = WorkloadConfig::psp_baseline();
        assert_eq!(c.slack, SlackRange::new(1.25, 5.0));
        assert_eq!(c.shape, GlobalShape::Parallel { m: 4 });
        assert!(c.validate().is_ok());
        assert_eq!(c.global_slack_factor(), 1.0, "PSP slack is unscaled");
    }

    #[test]
    fn serial_slack_factor_equalizes_mean_flexibility() {
        let c = WorkloadConfig::baseline();
        // E[global work] = 4, E[local ex] = 1 → factor 4.
        assert_eq!(c.global_slack_factor(), 4.0);
        // Mean global slack = 1.375·4 = 5.5; mean flexibility ratio
        // (5.5/4) / (1.375/1) = 1 = rel_flex. ✓
        let mean_fl_global = c.slack.mean() * c.global_slack_factor() / 4.0;
        let mean_fl_local = c.slack.mean() / 1.0;
        assert!((mean_fl_global / mean_fl_local - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rel_flex_scales_global_slack() {
        let mut c = WorkloadConfig::baseline();
        c.rel_flex = 2.0;
        assert_eq!(c.global_slack_factor(), 8.0);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        let mut c = WorkloadConfig::baseline();
        c.load = 0.0;
        assert!(c.validate().is_err());
        c = WorkloadConfig::baseline();
        c.load = 1.0;
        assert!(c.validate().is_err());
        c = WorkloadConfig::baseline();
        c.frac_local = 1.5;
        assert!(c.validate().is_err());
        c = WorkloadConfig::baseline();
        c.slack = SlackRange::new(2.0, 1.0);
        assert!(c.validate().is_err());
        c = WorkloadConfig::baseline();
        c.nodes = 0;
        assert!(c.validate().is_err());
        c = WorkloadConfig::baseline();
        c.shape = GlobalShape::Parallel { m: 10 };
        assert_eq!(
            c.validate(),
            Err(ConfigError::FanWiderThanNodes { fan: 10, nodes: 6 })
        );
    }

    #[test]
    fn degenerate_shape_parameters_are_rejected_with_indices() {
        // Regression: zero stage counts/widths used to surface as a
        // divide-by-zero or an empty-task panic deep in the generator
        // instead of an indexed ConfigError at validation time.
        let mut c = WorkloadConfig::baseline();
        c.shape = GlobalShape::Serial { m: 0 };
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.serial",
                index: 0,
                constraint: "≥ 1",
                value: 0.0,
            })
        );
        c.shape = GlobalShape::Parallel { m: 0 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.parallel",
                index: 0,
                ..
            })
        ));
        c.shape = GlobalShape::SerialRandomM { min_m: 0, max_m: 4 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.serial_random_m",
                index: 0,
                ..
            })
        ));
        c.shape = GlobalShape::SerialRandomM { min_m: 3, max_m: 2 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.serial_random_m",
                index: 1,
                ..
            })
        ));
        c.shape = GlobalShape::SerialParallel {
            stages: 0,
            branches: 2,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.serial_parallel",
                index: 0,
                ..
            })
        ));
        c.shape = GlobalShape::SerialParallel {
            stages: 2,
            branches: 0,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.serial_parallel",
                index: 1,
                ..
            })
        ));
        // The display names the field position.
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("shape.serial_parallel[1]"), "{msg}");
    }

    #[test]
    fn dag_shape_validation() {
        let mut c = WorkloadConfig::baseline();
        c.shape = GlobalShape::Dag {
            depth: 4,
            max_width: 3,
            edge_density: 0.5,
        };
        assert!(c.validate().is_ok());
        // Degenerate knobs, each reported with its field index
        // (0 = depth, 1 = max_width, 2 = edge_density).
        c.shape = GlobalShape::Dag {
            depth: 0,
            max_width: 3,
            edge_density: 0.5,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.dag",
                index: 0,
                ..
            })
        ));
        c.shape = GlobalShape::Dag {
            depth: 4,
            max_width: 0,
            edge_density: 0.5,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "shape.dag",
                index: 1,
                ..
            })
        ));
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            c.shape = GlobalShape::Dag {
                depth: 4,
                max_width: 3,
                edge_density: bad,
            };
            assert!(matches!(
                c.validate(),
                Err(ConfigError::InvalidEntry {
                    what: "shape.dag",
                    index: 2,
                    ..
                })
            ));
        }
        // Layers place their subtasks on distinct nodes, so the width is
        // capped by the node count like any parallel fan.
        c.shape = GlobalShape::Dag {
            depth: 2,
            max_width: 7,
            edge_density: 0.5,
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::FanWiderThanNodes { fan: 7, nodes: 6 })
        );
    }

    #[test]
    fn dag_slack_factor_scales_with_depth() {
        let mut c = WorkloadConfig::baseline();
        c.shape = GlobalShape::Dag {
            depth: 5,
            max_width: 3,
            edge_density: 0.3,
        };
        assert_eq!(c.global_slack_factor(), 5.0);
        c.rel_flex = 2.0;
        assert_eq!(c.global_slack_factor(), 10.0);
    }

    #[test]
    fn weights_validation() {
        let mut c = WorkloadConfig::baseline();
        c.local_weights = Some(vec![1.0; 5]);
        assert!(c.validate().is_err(), "wrong length");
        c.local_weights = Some(vec![0.0; 6]);
        assert!(c.validate().is_err(), "zero sum");
        c.local_weights = Some(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bad_weight_error_names_the_entry() {
        // Regression: this used to report `value: NaN` with no index,
        // hiding which weight was wrong.
        let mut c = WorkloadConfig::baseline();
        c.local_weights = Some(vec![1.0, 2.0, -3.0, 1.0, 1.0, 1.0]);
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidEntry {
                what: "local_weights",
                index: 2,
                constraint: "finite and ≥ 0",
                value: -3.0,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("local_weights[2]"), "{msg}");
        assert!(msg.contains("-3"), "{msg}");

        c.local_weights = Some(vec![1.0, f64::NAN, 1.0, 1.0, 1.0, 1.0]);
        match c.validate().unwrap_err() {
            ConfigError::InvalidEntry { index, value, .. } => {
                assert_eq!(index, 1);
                assert!(value.is_nan());
            }
            other => panic!("expected InvalidEntry, got {other:?}"),
        }
    }

    #[test]
    fn speeds_validation() {
        let mut c = WorkloadConfig::baseline();
        c.node_speeds = Some(vec![1.0; 5]);
        assert!(c.validate().is_err(), "wrong length");
        c.node_speeds = Some(vec![1.0, 1.0, 0.0, 1.0, 1.0, 1.0]);
        let err = c.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::InvalidEntry {
                what: "node_speeds",
                index: 2,
                constraint: "finite and > 0",
                value: 0.0,
            }
        );
        assert!(err.to_string().contains("node_speeds[2]"));
        c.node_speeds = Some(vec![0.5, 0.75, 1.0, 1.0, 1.25, 1.5]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn degenerate_arrival_processes_are_rejected_with_indices() {
        use crate::arrivals::{ArrivalProcess, PhaseSegment};
        // Empty phased script.
        let mut c = WorkloadConfig::baseline();
        c.arrivals = ArrivalProcess::Phased { segments: vec![] };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::OutOfRange { what, .. }) if what.contains("phased")
        ));
        // Zero-duration segment reports its index.
        c.arrivals = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(10.0, 1.0), PhaseSegment::new(0.0, 2.0)],
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "arrival_process.phased duration",
                index: 1,
                constraint: "finite and > 0",
                value: 0.0,
            })
        );
        // Negative rate factor reports its index.
        c.arrivals = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(10.0, -0.5)],
        };
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidEntry {
                what: "arrival_process.phased rate_factor",
                index: 0,
                constraint: "finite and ≥ 0",
                value: -0.5,
            })
        );
        // All-silent script: the cycle mean must be positive.
        c.arrivals = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(10.0, 0.0)],
        };
        assert!(c.validate().is_err());
        // MMPP parameter errors carry the documented entry index
        // (0 = burst_ratio, 1 = dwell_quiet, 2 = dwell_burst).
        for (index, arrivals) in [
            (
                0,
                ArrivalProcess::Mmpp2 {
                    burst_ratio: 0.0,
                    dwell_quiet: 10.0,
                    dwell_burst: 10.0,
                },
            ),
            (
                1,
                ArrivalProcess::Mmpp2 {
                    burst_ratio: 2.0,
                    dwell_quiet: -1.0,
                    dwell_burst: 10.0,
                },
            ),
            (
                2,
                ArrivalProcess::Mmpp2 {
                    burst_ratio: 2.0,
                    dwell_quiet: 10.0,
                    dwell_burst: f64::NAN,
                },
            ),
        ] {
            c.arrivals = arrivals;
            match c.validate().unwrap_err() {
                ConfigError::InvalidEntry {
                    what, index: got, ..
                } => {
                    assert_eq!(what, "arrival_process.mmpp2");
                    assert_eq!(got, index);
                }
                other => panic!("expected InvalidEntry, got {other:?}"),
            }
        }
        // The error display names the entry.
        c.arrivals = ArrivalProcess::Mmpp2 {
            burst_ratio: 2.0,
            dwell_quiet: 0.0,
            dwell_burst: 10.0,
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("arrival_process.mmpp2[1]"), "{msg}");
    }

    #[test]
    fn valid_arrival_processes_pass_validation() {
        use crate::arrivals::{ArrivalProcess, PhaseSegment};
        let mut c = WorkloadConfig::baseline();
        assert!(c.arrivals.is_poisson());
        c.arrivals = ArrivalProcess::Mmpp2 {
            burst_ratio: 4.0,
            dwell_quiet: 300.0,
            dwell_burst: 100.0,
        };
        assert!(c.validate().is_ok());
        c.arrivals = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(400.0, 1.0), PhaseSegment::new(100.0, 2.0)],
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn error_display() {
        let e = ConfigError::FanWiderThanNodes { fan: 8, nodes: 6 };
        assert!(e.to_string().contains("8"));
        let c = WorkloadConfig {
            load: -1.0,
            ..WorkloadConfig::baseline()
        };
        assert!(c.rates().unwrap_err().to_string().contains("load"));
    }

    #[test]
    fn slack_range_helpers() {
        let s = SlackRange::new(1.0, 3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.scaled(2.0), SlackRange::new(2.0, 6.0));
    }
}
