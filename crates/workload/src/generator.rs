//! The task factory: turns configuration + RNG streams into task
//! instances.

use rand::Rng;

use sda_core::{DagRun, FlatRun, NodeId, TaskAttributes, TaskSpec};
use sda_sim::dist::{Sampler, Uniform};
use sda_sim::rng::{RngFactory, Stream};

use crate::arrivals::ArrivalSampler;
use crate::config::{ConfigError, DerivedRates, WorkloadConfig};
use crate::shape::{harmonic, GlobalShape};

/// A generated local task: one unit of work at its home node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTask {
    /// The node that generated (and will execute) the task.
    pub node: NodeId,
    /// Its real-time attributes (`dl = ar + ex + slack`).
    pub attrs: TaskAttributes,
}

/// A generated global task: a serial-parallel structure plus its
/// end-to-end deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalTask {
    /// The structure, with sampled per-subtask `ex`/`pex` and node
    /// assignments.
    pub spec: TaskSpec,
    /// Arrival time `ar(T)`.
    pub arrival: f64,
    /// End-to-end deadline `dl(T)`.
    pub deadline: f64,
}

impl GlobalTask {
    /// The slack implied by the deadline: `dl − ar − critical_path_ex`.
    pub fn slack(&self) -> f64 {
        self.deadline - self.arrival - self.spec.critical_path_ex()
    }
}

/// Generates the paper's workload deterministically from named RNG
/// streams. See the [crate docs](crate) for the model and an example.
///
/// All samplers are closed [`Sampler`] enums (no `Box<dyn Dist>`), the
/// per-stream interarrival samplers (Poisson, MMPP or phased — see
/// [`ArrivalProcess`](crate::ArrivalProcess)) are prebuilt with their
/// state inline, and
/// [`TaskFactory::make_global_flat`] fills a recycled
/// [`FlatRun`] — so steady-state task generation performs zero heap
/// allocations and no virtual dispatch.
#[derive(Debug)]
pub struct TaskFactory {
    cfg: WorkloadConfig,
    rates: DerivedRates,
    local_ex: Sampler,
    subtask_ex: Sampler,
    slack: Uniform,
    // One arrival stream per node keeps the per-node Poisson processes
    // independent of each other and of everything else.
    local_arrivals: Vec<Stream>,
    local_service: Stream,
    local_slack: Stream,
    global_arrivals: Stream,
    global_service: Stream,
    global_slack: Stream,
    node_pick: Stream,
    pex_noise: Stream,
    shape_draw: Stream,
    /// Per-node local arrival rates (sums to `k · λ_local_per_node`).
    node_rates: Vec<f64>,
    /// Interarrival samplers derived from `node_rates` under the
    /// configured [`ArrivalProcess`](crate::ArrivalProcess) (`None` at
    /// rate 0). Each stream owns its own state (MMPP phase, cycle
    /// position), so streams modulate independently.
    local_arrival_gen: Vec<Option<ArrivalSampler>>,
    /// Interarrival sampler of the global stream (`None` at rate 0).
    global_arrival_gen: Option<ArrivalSampler>,
    /// Fisher-Yates scratch for distinct-node draws (reused per stage).
    node_scratch: Vec<u32>,
    /// DAG-generation scratch: start index of each layer (reused per
    /// task).
    layer_starts: Vec<u32>,
    /// DAG-generation scratch: the mandatory predecessor chosen for each
    /// node (`u32::MAX` for layer 0), for O(1) duplicate-edge checks.
    chosen_pred: Vec<u32>,
    /// DAG-generation scratch: the mandatory successor chosen for each
    /// node (`u32::MAX` at the last layer or when the node already had
    /// one).
    chosen_succ: Vec<u32>,
    /// Per-node speed factors (all 1.0 when the configuration is
    /// homogeneous); service at node `i` takes `ex / speeds[i]`.
    speeds: Vec<f64>,
}

impl TaskFactory {
    /// Builds a factory for `cfg`, drawing all streams from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration fails validation.
    pub fn new(cfg: WorkloadConfig, rng: &RngFactory) -> Result<TaskFactory, ConfigError> {
        let rates = cfg.rates()?;
        let local_ex = cfg
            .service
            .build_sampler(cfg.mean_local_ex)
            .expect("validated shape");
        let subtask_ex = cfg
            .service
            .build_sampler(cfg.mean_subtask_ex)
            .expect("validated shape");
        let slack = Uniform::new(cfg.slack.min, cfg.slack.max).expect("validated range");

        let total_local_rate = rates.lambda_local_per_node * cfg.nodes as f64;
        let node_rates: Vec<f64> = match &cfg.local_weights {
            None => vec![rates.lambda_local_per_node; cfg.nodes],
            Some(w) => {
                let sum: f64 = w.iter().sum();
                w.iter().map(|wi| total_local_rate * wi / sum).collect()
            }
        };
        let local_arrival_gen = node_rates
            .iter()
            .map(|&rate| ArrivalSampler::new(&cfg.arrivals, rate))
            .collect();
        let global_arrival_gen = ArrivalSampler::new(&cfg.arrivals, rates.lambda_global);

        let local_arrivals = (0..cfg.nodes)
            .map(|i| rng.stream_indexed("workload.local.arrival", i))
            .collect();

        let speeds = cfg
            .node_speeds
            .clone()
            .unwrap_or_else(|| vec![1.0; cfg.nodes]);

        Ok(TaskFactory {
            rates,
            local_ex,
            subtask_ex,
            slack,
            local_arrivals,
            local_service: rng.stream("workload.local.service"),
            local_slack: rng.stream("workload.local.slack"),
            global_arrivals: rng.stream("workload.global.arrival"),
            global_service: rng.stream("workload.global.service"),
            global_slack: rng.stream("workload.global.slack"),
            node_pick: rng.stream("workload.node_pick"),
            pex_noise: rng.stream("workload.pex"),
            shape_draw: rng.stream("workload.shape"),
            node_rates,
            local_arrival_gen,
            global_arrival_gen,
            node_scratch: Vec::with_capacity(cfg.nodes),
            layer_starts: Vec::new(),
            chosen_pred: Vec::new(),
            chosen_succ: Vec::new(),
            speeds,
            cfg,
        })
    }

    /// Per-node speed factors in force (all 1.0 when homogeneous).
    pub fn node_speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// The derived arrival rates.
    pub fn rates(&self) -> DerivedRates {
        self.rates
    }

    /// Per-node local arrival rates (sums to `k · λ_local_per_node`;
    /// shifted by [`WorkloadConfig::local_weights`] when set).
    pub fn node_rates(&self) -> &[f64] {
        &self.node_rates
    }

    /// Draws the next interarrival gap of `node`'s local arrival stream
    /// (Poisson under the baseline; MMPP or phased under a time-varying
    /// [`ArrivalProcess`](crate::ArrivalProcess)); `None` if that node
    /// generates no local tasks (rate 0).
    pub fn next_local_interarrival(&mut self, node: NodeId) -> Option<f64> {
        let gen = self.local_arrival_gen[node.index()].as_mut()?;
        Some(gen.sample_with(&mut self.local_arrivals[node.index()]))
    }

    /// Draws the next interarrival gap of the global arrival stream;
    /// `None` if no global tasks are generated (`frac_local = 1`).
    pub fn next_global_interarrival(&mut self) -> Option<f64> {
        let gen = self.global_arrival_gen.as_mut()?;
        Some(gen.sample_with(&mut self.global_arrivals))
    }

    /// Generates a local task arriving at `now` at `node`.
    ///
    /// The execution time is the sampled demand divided by the node's
    /// speed factor (identity under the homogeneous baseline), so the
    /// deadline identity `dl = ar + ex + slack` holds in wall-clock time
    /// on heterogeneous hardware too.
    pub fn make_local(&mut self, node: NodeId, now: f64) -> LocalTask {
        let ex = self.local_ex.sample_with(&mut self.local_service) / self.speeds[node.index()];
        let slack = self.slack.sample_with(&mut self.local_slack);
        LocalTask {
            node,
            attrs: TaskAttributes::from_slack(now, ex, slack),
        }
    }

    /// Generates a global task arriving at `now`: samples the structure,
    /// per-subtask execution times, node placement, predictions, and the
    /// end-to-end deadline.
    ///
    /// Deadlines follow the paper's `dl = ar + ex + sl` identity with
    /// `ex` the zero-queueing end-to-end time (critical-path `ex`):
    /// * serial: `dl = ar + Σ ex_i + u·rel_flex·m·E[ex_sub]/E[ex_loc]`
    /// * parallel (§5.2 eq. 2): `dl = ar + max_i ex_i + u` (unscaled)
    /// * pipelines: `dl = ar + cp_ex + u·rel_flex·E[cp]/E[ex_loc]`
    ///
    /// where `u ~ U[Smin, Smax]` is the same base draw the locals use.
    ///
    /// This is the allocating convenience wrapper around
    /// [`TaskFactory::make_global_flat`] (the single sampling path, so
    /// the two agree draw-for-draw); the simulation hot path uses the
    /// flat variant with a pooled [`FlatRun`] directly.
    ///
    /// # Panics
    ///
    /// Panics for [`GlobalShape::Dag`] — a general DAG has no nested
    /// [`TaskSpec`] form; use [`TaskFactory::make_global_dag`].
    pub fn make_global(&mut self, now: f64) -> GlobalTask {
        let mut run = FlatRun::new();
        self.make_global_flat(now, &mut run);
        GlobalTask {
            spec: self.nested_spec(&run),
            arrival: now,
            deadline: run.global_deadline(),
        }
    }

    /// Fills a recycled [`FlatRun`] with a freshly sampled global task
    /// arriving at `now` — structure, per-subtask `ex`/`pex`, node
    /// placement and the end-to-end deadline. Performs no heap
    /// allocation once the run's capacity has warmed up.
    pub fn make_global_flat(&mut self, now: f64, run: &mut FlatRun) {
        run.reset();
        match self.cfg.shape {
            GlobalShape::Serial { m } => {
                self.fill_serial(m, run);
                run.set_structure(true, false);
            }
            GlobalShape::SerialRandomM { min_m, max_m } => {
                let m = self.shape_draw.gen_range(min_m..=max_m);
                self.fill_serial(m, run);
                run.set_structure(true, false);
            }
            GlobalShape::Parallel { m } => {
                self.fill_parallel_stage(m, run);
                run.set_structure(false, true);
            }
            GlobalShape::SerialParallel { stages, branches } => {
                for _ in 0..stages {
                    self.fill_parallel_stage(branches, run);
                }
                run.set_structure(true, true);
            }
            GlobalShape::Dag { .. } => {
                panic!("DAG-shaped workloads use TaskFactory::make_global_dag, not a FlatRun")
            }
        }
        let u = self.slack.sample_with(&mut self.global_slack);
        let factor = self.flat_slack_factor(run.simple_count());
        let deadline = now + run.critical_path_ex() + u * factor;
        run.set_timing(now, deadline);
    }

    /// Fills a recycled [`DagRun`] with a freshly sampled DAG-structured
    /// global task arriving at `now` — random layered structure with
    /// cross-layer edges (see [`GlobalShape::Dag`] for the model),
    /// per-subtask `ex`/`pex`, distinct-node placement within each
    /// layer, and the end-to-end deadline. Performs no heap allocation
    /// once the run's capacity has warmed up.
    ///
    /// The deadline follows the same identity as the tree shapes, with
    /// the critical path playing the role of the serial chain:
    /// `dl = ar + cp_ex + u · rel_flex · depth · E[ex_sub]/E[ex_loc]`,
    /// where `cp_ex` is the task's zero-queueing end-to-end time (its
    /// longest-`ex` path), `depth` is the task's own structural depth
    /// (so deeper tasks get slack proportional to their own critical
    /// path, exactly like heterogeneous-`m` serial tasks), and `u` is
    /// the same base slack draw the locals use.
    ///
    /// # Panics
    ///
    /// Panics if the configured shape is not [`GlobalShape::Dag`].
    pub fn make_global_dag(&mut self, now: f64, run: &mut DagRun) {
        let GlobalShape::Dag {
            depth,
            max_width,
            edge_density,
        } = self.cfg.shape
        else {
            panic!("make_global_dag requires GlobalShape::Dag")
        };
        run.reset();
        // Layers of subtasks, distinct nodes within each layer.
        self.layer_starts.clear();
        for _ in 0..depth {
            let width = self.shape_draw.gen_range(1..=max_width);
            self.layer_starts.push(run.simple_count() as u32);
            self.fill_dag_layer(width, run);
        }
        self.layer_starts.push(run.simple_count() as u32);
        let n = run.simple_count();

        // Connectivity skeleton: every node gets one predecessor in the
        // previous layer; every node that would otherwise be a dead end
        // gets one successor in the next. The chosen edges are recorded
        // for O(1) duplicate suppression below.
        self.chosen_pred.clear();
        self.chosen_pred.resize(n, u32::MAX);
        self.chosen_succ.clear();
        self.chosen_succ.resize(n, u32::MAX);
        for l in 1..depth {
            let (prev_lo, prev_hi) = (self.layer_starts[l - 1], self.layer_starts[l]);
            let (lo, hi) = (self.layer_starts[l], self.layer_starts[l + 1]);
            for v in lo..hi {
                let u = self.shape_draw.gen_range(prev_lo..prev_hi);
                run.push_edge(u, v);
                self.chosen_pred[v as usize] = u;
            }
            for u in prev_lo..prev_hi {
                // Skip nodes some mandatory-predecessor edge already
                // departs from.
                if (lo..hi).any(|v| self.chosen_pred[v as usize] == u) {
                    continue;
                }
                let v = self.shape_draw.gen_range(lo..hi);
                run.push_edge(u, v);
                self.chosen_succ[u as usize] = v;
            }
        }

        // Optional extra forward edges: probability `edge_density` per
        // consecutive-layer pair, halving per layer skipped.
        if edge_density > 0.0 {
            for i in 0..depth {
                for j in i + 1..depth {
                    let p = edge_density / f64::powi(2.0, (j - i - 1) as i32);
                    for u in self.layer_starts[i]..self.layer_starts[i + 1] {
                        for v in self.layer_starts[j]..self.layer_starts[j + 1] {
                            let mandatory = j == i + 1
                                && (self.chosen_pred[v as usize] == u
                                    || self.chosen_succ[u as usize] == v);
                            // One draw per candidate pair, mandatory or
                            // not, so the stream position depends only
                            // on the sampled layer widths.
                            let hit = self.shape_draw.gen::<f64>() < p;
                            if hit && !mandatory {
                                run.push_edge(u, v);
                            }
                        }
                    }
                }
            }
        }
        run.finalize();

        let u = self.slack.sample_with(&mut self.global_slack);
        let factor = self.cfg.rel_flex * run.depth() as f64 * self.cfg.mean_subtask_ex
            / self.cfg.mean_local_ex;
        let deadline = now + run.critical_path_ex() + u * factor;
        run.set_timing(now, deadline);
    }

    /// One DAG layer of `width` subtasks at `width` distinct nodes
    /// (same distinct-node discipline as parallel stages, so siblings
    /// never queue behind each other at a single server).
    fn fill_dag_layer(&mut self, width: usize, run: &mut DagRun) {
        let k = self.cfg.nodes;
        debug_assert!(width <= k, "validated by ConfigError::FanWiderThanNodes");
        self.node_scratch.clear();
        self.node_scratch.extend(0..k as u32);
        for i in 0..width {
            let j = self.node_pick.gen_range(i..k);
            self.node_scratch.swap(i, j);
        }
        for i in 0..width {
            let node = NodeId::new(self.node_scratch[i]);
            let ex = self.subtask_ex.sample_with(&mut self.global_service);
            let pex = self.cfg.pex.predict(ex, &mut self.pex_noise);
            let speed = self.speeds[node.index()];
            run.push_node(node, ex / speed, pex / speed);
        }
    }

    /// Per-task slack scaling (see [`WorkloadConfig::global_slack_factor`]
    /// for the expected-value version; here the serial factor uses the
    /// task's *actual* stage count so heterogeneous-`m` tasks get slack
    /// proportional to their own size).
    fn flat_slack_factor(&self, simple_count: usize) -> f64 {
        match self.cfg.shape {
            GlobalShape::Serial { .. } | GlobalShape::SerialRandomM { .. } => {
                self.cfg.rel_flex * simple_count as f64 * self.cfg.mean_subtask_ex
                    / self.cfg.mean_local_ex
            }
            GlobalShape::Parallel { .. } => 1.0,
            GlobalShape::SerialParallel { stages, branches } => {
                self.cfg.rel_flex * stages as f64 * harmonic(branches) * self.cfg.mean_subtask_ex
                    / self.cfg.mean_local_ex
            }
            GlobalShape::Dag { .. } => {
                unreachable!("DAG tasks are filled by make_global_dag, which scales by depth")
            }
        }
    }

    /// `m` bare serial stages, nodes drawn uniformly with replacement.
    ///
    /// Sampled demand and its prediction are both divided by the host
    /// node's speed factor (identity when homogeneous), so deadline
    /// assignment reasons in node-local service *time*.
    fn fill_serial(&mut self, m: usize, run: &mut FlatRun) {
        let k = self.cfg.nodes as u32;
        for _ in 0..m {
            let node = NodeId::new(self.node_pick.gen_range(0..k));
            let ex = self.subtask_ex.sample_with(&mut self.global_service);
            let pex = self.cfg.pex.predict(ex, &mut self.pex_noise);
            let speed = self.speeds[node.index()];
            run.push_subtask(node, ex / speed, pex / speed);
            run.end_stage();
        }
    }

    /// One parallel stage of `m` branches at `m` distinct nodes, drawn by
    /// partial Fisher-Yates over the reusable scratch pool (§5.2 places
    /// the branches of a fan at `m` different nodes).
    fn fill_parallel_stage(&mut self, m: usize, run: &mut FlatRun) {
        let k = self.cfg.nodes;
        debug_assert!(m <= k, "validated by ConfigError::FanWiderThanNodes");
        self.node_scratch.clear();
        self.node_scratch.extend(0..k as u32);
        for i in 0..m {
            let j = self.node_pick.gen_range(i..k);
            self.node_scratch.swap(i, j);
        }
        for i in 0..m {
            let node = NodeId::new(self.node_scratch[i]);
            let ex = self.subtask_ex.sample_with(&mut self.global_service);
            let pex = self.cfg.pex.predict(ex, &mut self.pex_noise);
            let speed = self.speeds[node.index()];
            run.push_subtask(node, ex / speed, pex / speed);
        }
        run.end_stage();
    }

    /// Rebuilds the nested [`TaskSpec`] equivalent of a filled run, per
    /// the configured shape (for the allocating [`TaskFactory::make_global`]
    /// path and tools that want the tree form).
    fn nested_spec(&self, run: &FlatRun) -> TaskSpec {
        let leaves = |subs: &[sda_core::SimpleSpec]| -> Vec<TaskSpec> {
            subs.iter().map(|s| TaskSpec::Simple(*s)).collect()
        };
        match self.cfg.shape {
            GlobalShape::Serial { .. } | GlobalShape::SerialRandomM { .. } => {
                TaskSpec::Serial(leaves(run.subtasks()))
            }
            GlobalShape::Parallel { .. } => TaskSpec::Parallel(leaves(run.subtasks())),
            GlobalShape::SerialParallel { .. } => TaskSpec::Serial(
                (0..run.stage_count())
                    .map(|s| TaskSpec::Parallel(leaves(run.stage(s))))
                    .collect(),
            ),
            // A general DAG has no serial-parallel tree form; callers
            // reach this only through make_global, which panics earlier
            // in make_global_flat with an actionable message.
            GlobalShape::Dag { .. } => {
                unreachable!("DAG tasks cannot be expressed as a nested TaskSpec")
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // HashSet as a test-only membership check never feeds results
mod tests {
    use super::*;
    use crate::pex::PexModel;
    use std::collections::HashSet;

    fn factory(cfg: WorkloadConfig, seed: u64) -> TaskFactory {
        TaskFactory::new(cfg, &RngFactory::new(seed)).unwrap()
    }

    #[test]
    fn determinism_same_seed_same_tasks() {
        let mut a = factory(WorkloadConfig::baseline(), 7);
        let mut b = factory(WorkloadConfig::baseline(), 7);
        for _ in 0..50 {
            assert_eq!(a.make_global(1.0), b.make_global(1.0));
            assert_eq!(
                a.make_local(NodeId::new(2), 1.0),
                b.make_local(NodeId::new(2), 1.0)
            );
            assert_eq!(a.next_global_interarrival(), b.next_global_interarrival());
        }
    }

    #[test]
    fn flat_and_nested_paths_agree_bit_exactly() {
        use sda_core::FlatRun;
        for cfg in [
            WorkloadConfig::baseline(),
            WorkloadConfig::psp_baseline(),
            WorkloadConfig::combined_baseline(),
            WorkloadConfig {
                shape: GlobalShape::SerialRandomM { min_m: 2, max_m: 8 },
                ..WorkloadConfig::baseline()
            },
        ] {
            let mut nested = factory(cfg.clone(), 31);
            let mut flat = factory(cfg, 31);
            let mut run = FlatRun::new();
            for step in 0..200 {
                let now = step as f64 * 0.5;
                let g = nested.make_global(now);
                flat.make_global_flat(now, &mut run);
                assert_eq!(g.deadline.to_bits(), run.global_deadline().to_bits());
                assert_eq!(g.arrival, run.arrival());
                let nested_subs = g.spec.simple_subtasks();
                assert_eq!(nested_subs.len(), run.simple_count());
                for (a, b) in nested_subs.iter().zip(run.subtasks()) {
                    assert_eq!(a.node, b.node);
                    assert_eq!(a.ex.to_bits(), b.ex.to_bits());
                    assert_eq!(a.pex.to_bits(), b.pex.to_bits());
                }
                // Interleave arrival draws so stream positions stay lock-step.
                assert_eq!(
                    nested.next_global_interarrival(),
                    flat.next_global_interarrival()
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = factory(WorkloadConfig::baseline(), 1);
        let mut b = factory(WorkloadConfig::baseline(), 2);
        assert_ne!(a.make_global(0.0), b.make_global(0.0));
    }

    #[test]
    fn local_interarrival_mean_matches_rate() {
        let mut f = factory(WorkloadConfig::baseline(), 11);
        let n = 50_000;
        let sum: f64 = (0..n)
            .map(|_| f.next_local_interarrival(NodeId::new(0)).unwrap())
            .sum();
        let mean = sum / n as f64;
        // λ = 0.375 → mean gap 2.666…
        assert!((mean - 1.0 / 0.375).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn global_interarrival_mean_matches_rate() {
        let mut f = factory(WorkloadConfig::baseline(), 12);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| f.next_global_interarrival().unwrap()).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0 / 0.1875).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn serial_tasks_have_erlang_total_work() {
        let mut f = factory(WorkloadConfig::baseline(), 13);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let g = f.make_global(0.0);
            assert_eq!(g.spec.simple_count(), 4);
            assert!(g.spec.is_flat_serial());
            total += g.spec.total_ex();
        }
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean total work {mean}");
    }

    #[test]
    fn serial_deadline_uses_scaled_slack() {
        let mut f = factory(WorkloadConfig::baseline(), 14);
        for _ in 0..1000 {
            let g = f.make_global(5.0);
            let slack = g.deadline - 5.0 - g.spec.total_ex();
            // u ∈ [0.25, 2.5], factor 4 → slack ∈ [1, 10].
            assert!((1.0..=10.0).contains(&slack), "slack {slack}");
        }
    }

    #[test]
    fn parallel_tasks_use_distinct_nodes_and_eq2_deadline() {
        let mut f = factory(WorkloadConfig::psp_baseline(), 15);
        for _ in 0..1000 {
            let g = f.make_global(2.0);
            assert!(g.spec.is_flat_parallel());
            let nodes: HashSet<_> = g.spec.simple_subtasks().iter().map(|s| s.node).collect();
            assert_eq!(nodes.len(), 4, "branches must land on distinct nodes");
            // dl = ar + max ex + u, u ∈ [1.25, 5].
            let max_ex = g.spec.critical_path_ex();
            let u = g.deadline - 2.0 - max_ex;
            assert!((1.25..=5.0).contains(&u), "slack draw {u}");
        }
    }

    #[test]
    fn serial_random_m_stays_in_range_and_scales_slack() {
        let cfg = WorkloadConfig {
            shape: GlobalShape::SerialRandomM { min_m: 2, max_m: 8 },
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 16);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let g = f.make_global(0.0);
            let m = g.spec.simple_count();
            assert!((2..=8).contains(&m));
            seen.insert(m);
            // Slack scaled by the task's own m.
            let slack = g.deadline - g.spec.total_ex();
            let (lo, hi) = (0.25 * m as f64, 2.5 * m as f64);
            assert!(slack >= lo - 1e-9 && slack <= hi + 1e-9);
        }
        assert_eq!(seen.len(), 7, "all chain lengths appear");
    }

    #[test]
    fn pipeline_shape_builds_serial_of_parallel() {
        let cfg = WorkloadConfig::combined_baseline();
        let mut f = factory(cfg, 17);
        let g = f.make_global(0.0);
        assert_eq!(g.spec.simple_count(), 6);
        assert_eq!(g.spec.depth(), 2);
        match &g.spec {
            TaskSpec::Serial(stages) => {
                assert_eq!(stages.len(), 2);
                for s in stages {
                    assert!(s.is_flat_parallel());
                }
            }
            other => panic!("expected serial root, got {other:?}"),
        }
        assert!(g.slack() >= 0.0);
    }

    #[test]
    fn noisy_pex_differs_from_ex() {
        let cfg = WorkloadConfig {
            pex: PexModel::Noisy { error: 0.5 },
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 18);
        let g = f.make_global(0.0);
        let any_differs = g
            .spec
            .simple_subtasks()
            .iter()
            .any(|s| (s.ex - s.pex).abs() > 1e-12);
        assert!(any_differs);
        for s in g.spec.simple_subtasks() {
            assert!(s.pex >= 0.5 * s.ex - 1e-12 && s.pex <= 1.5 * s.ex + 1e-12);
        }
    }

    #[test]
    fn hetero_weights_shift_arrival_rates() {
        let cfg = WorkloadConfig {
            local_weights: Some(vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 19);
        let n = 20_000;
        let mean_gap = |f: &mut TaskFactory, node: u32| -> f64 {
            (0..n)
                .map(|_| f.next_local_interarrival(NodeId::new(node)).unwrap())
                .sum::<f64>()
                / n as f64
        };
        let hot = mean_gap(&mut f, 0);
        let cold = mean_gap(&mut f, 1);
        // Node 0 has 3× the weight → one-third the mean gap.
        assert!((cold / hot - 3.0).abs() < 0.2, "ratio {}", cold / hot);
        // Total rate preserved: Σ λ_i = k·λ̄ = 2.25.
        let total: f64 = f.node_rates.iter().sum();
        assert!((total - 2.25).abs() < 1e-12);
    }

    #[test]
    fn node_speeds_scale_service_times() {
        let speeds = vec![0.5, 1.0, 2.0, 1.0, 1.0, 1.0];
        let hetero = WorkloadConfig {
            node_speeds: Some(speeds.clone()),
            ..WorkloadConfig::baseline()
        };
        let mut base = factory(WorkloadConfig::baseline(), 40);
        let mut het = factory(hetero, 40);
        // Same seed → same demand draws; heterogeneous ex must equal the
        // homogeneous draw divided by the host node's speed, bit-exactly.
        for _ in 0..200 {
            let a = base.make_global(0.0);
            let b = het.make_global(0.0);
            for (sa, sb) in a
                .spec
                .simple_subtasks()
                .iter()
                .zip(b.spec.simple_subtasks())
            {
                assert_eq!(sa.node, sb.node);
                assert_eq!((sa.ex / speeds[sb.node.index()]).to_bits(), sb.ex.to_bits());
                assert_eq!(
                    (sa.pex / speeds[sb.node.index()]).to_bits(),
                    sb.pex.to_bits()
                );
            }
            // The deadline covers the *scaled* critical path plus slack.
            let slack = b.deadline - b.spec.critical_path_ex();
            assert!(slack >= 0.25 - 1e-9, "slack {slack}");
        }
        // Locals at the slow node take twice the homogeneous time.
        let la = base.make_local(NodeId::new(0), 1.0);
        let lb = het.make_local(NodeId::new(0), 1.0);
        assert_eq!((la.attrs.ex / 0.5).to_bits(), lb.attrs.ex.to_bits());
    }

    #[test]
    fn uniform_speeds_are_bit_identical_to_none() {
        let uniform = WorkloadConfig {
            node_speeds: Some(vec![1.0; 6]),
            ..WorkloadConfig::baseline()
        };
        let mut a = factory(WorkloadConfig::baseline(), 41);
        let mut b = factory(uniform, 41);
        for _ in 0..100 {
            assert_eq!(a.make_global(2.0), b.make_global(2.0));
            assert_eq!(
                a.make_local(NodeId::new(3), 2.0),
                b.make_local(NodeId::new(3), 2.0)
            );
        }
    }

    #[test]
    fn poisson_arrival_process_is_bit_identical_to_baseline() {
        use crate::arrivals::ArrivalProcess;
        // The `arrivals` field defaulting to Poisson must not perturb a
        // single draw relative to the pre-`ArrivalProcess` sampler.
        let explicit = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson,
            ..WorkloadConfig::baseline()
        };
        let mut a = factory(WorkloadConfig::baseline(), 50);
        let mut b = factory(explicit, 50);
        for _ in 0..500 {
            assert_eq!(
                a.next_global_interarrival().unwrap().to_bits(),
                b.next_global_interarrival().unwrap().to_bits()
            );
            assert_eq!(
                a.next_local_interarrival(NodeId::new(1)).unwrap().to_bits(),
                b.next_local_interarrival(NodeId::new(1)).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn mmpp_streams_keep_the_configured_mean_rate() {
        use crate::arrivals::ArrivalProcess;
        let cfg = WorkloadConfig {
            arrivals: ArrivalProcess::Mmpp2 {
                burst_ratio: 5.0,
                dwell_quiet: 150.0,
                dwell_burst: 50.0,
            },
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 51);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| f.next_local_interarrival(NodeId::new(0)).unwrap())
            .sum();
        let rate = n as f64 / total;
        // λ_local = 0.375 per node, preserved in the long run.
        assert!((rate - 0.375).abs() / 0.375 < 0.05, "rate {rate}");
        // The global stream modulates independently but keeps its mean
        // too.
        let total: f64 = (0..n).map(|_| f.next_global_interarrival().unwrap()).sum();
        let rate = n as f64 / total;
        assert!((rate - 0.1875).abs() / 0.1875 < 0.05, "global rate {rate}");
    }

    #[test]
    fn zero_rate_streams_return_none() {
        let cfg = WorkloadConfig {
            frac_local: 1.0,
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 20);
        assert!(f.next_global_interarrival().is_none());
        assert!(f.next_local_interarrival(NodeId::new(0)).is_some());

        let cfg = WorkloadConfig {
            frac_local: 0.0,
            ..WorkloadConfig::baseline()
        };
        let mut f = factory(cfg, 21);
        assert!(f.next_global_interarrival().is_some());
        assert!(f.next_local_interarrival(NodeId::new(0)).is_none());
    }

    #[test]
    fn local_task_attributes_satisfy_identity() {
        let mut f = factory(WorkloadConfig::baseline(), 22);
        for _ in 0..1000 {
            let t = f.make_local(NodeId::new(1), 3.0);
            assert_eq!(t.attrs.arrival, 3.0);
            let slack = t.attrs.slack();
            assert!((0.25..=2.5).contains(&slack));
            assert_eq!(t.attrs.pex, t.attrs.ex);
        }
    }

    #[test]
    fn psp_slack_range_applies_to_locals_too() {
        let mut f = factory(WorkloadConfig::psp_baseline(), 23);
        for _ in 0..500 {
            let t = f.make_local(NodeId::new(0), 0.0);
            let slack = t.attrs.slack();
            assert!((1.25..=5.0).contains(&slack));
        }
    }

    #[test]
    fn global_task_slack_accessor() {
        let mut f = factory(WorkloadConfig::baseline(), 24);
        let g = f.make_global(1.0);
        assert!((g.slack() - (g.deadline - 1.0 - g.spec.critical_path_ex())).abs() < 1e-12);
    }

    fn dag_config() -> WorkloadConfig {
        WorkloadConfig {
            shape: GlobalShape::Dag {
                depth: 4,
                max_width: 3,
                edge_density: 0.4,
            },
            slack: crate::config::SlackRange::PSP_BASELINE,
            ..WorkloadConfig::baseline()
        }
    }

    #[test]
    fn dag_tasks_are_deterministic_connected_and_in_bounds() {
        use sda_core::DagRun;
        let mut a = factory(dag_config(), 60);
        let mut b = factory(dag_config(), 60);
        let mut run = DagRun::new();
        let mut run_b = DagRun::new();
        for step in 0..300 {
            let now = step as f64 * 0.25;
            a.make_global_dag(now, &mut run);
            b.make_global_dag(now, &mut run_b);
            // Same seed → bit-identical structure, demands and deadline.
            assert_eq!(run.simple_count(), run_b.simple_count());
            assert_eq!(run.edge_count(), run_b.edge_count());
            assert_eq!(
                run.global_deadline().to_bits(),
                run_b.global_deadline().to_bits()
            );
            // Structure bounds: depth 4 layers of width ≤ 3.
            let n = run.simple_count();
            assert!((4..=12).contains(&n), "{n} subtasks");
            // The skeleton gives every layer-l node a predecessor in
            // layer l − 1 and there are no intra-layer edges, so the
            // longest path visits exactly one node per layer.
            assert_eq!(run.depth(), 4, "depth {}", run.depth());
            // Weakly connected: only layer-0 nodes are sources, and no
            // node is a dead end unless it is in the last layer; with
            // the skeleton edges every non-source has a predecessor and
            // every non-sink a successor.
            let sources = (0..n as u32)
                .filter(|&i| run.predecessors(i).is_empty())
                .count();
            assert!(sources >= 1);
            for i in 0..n as u32 {
                assert!(
                    !run.predecessors(i).is_empty() || !run.successors(i).is_empty() || n == 1,
                    "node {i} is isolated"
                );
            }
            // Deadline identity: slack ≥ u_min · factor with factor =
            // rel_flex · depth (≥ 2 layers on every path) ≥ 1.25·2.
            let slack = run.global_deadline() - now - run.critical_path_ex();
            assert!(slack >= 1.25 * run.depth() as f64 - 1e-9, "slack {slack}");
        }
    }

    #[test]
    fn dag_layers_use_distinct_nodes() {
        use sda_core::DagRun;
        use std::collections::HashSet;
        let mut f = factory(dag_config(), 61);
        let mut run = DagRun::new();
        for _ in 0..100 {
            f.make_global_dag(0.0, &mut run);
            // Within a layer (an antichain sharing the same predecessor
            // set structure), nodes are distinct: check that no two
            // subtasks with identical predecessor lists share a node.
            // Cheap proxy: sources form layer 0.
            let sources: Vec<_> = (0..run.simple_count() as u32)
                .filter(|&i| run.predecessors(i).is_empty())
                .collect();
            let nodes: HashSet<_> = sources
                .iter()
                .map(|&i| run.subtasks()[i as usize].node)
                .collect();
            assert_eq!(nodes.len(), sources.len(), "layer-0 nodes collide");
        }
    }

    #[test]
    fn dag_edge_density_zero_and_one_bracket_the_edge_count() {
        use sda_core::DagRun;
        let sparse = WorkloadConfig {
            shape: GlobalShape::Dag {
                depth: 4,
                max_width: 3,
                edge_density: 0.0,
            },
            ..dag_config()
        };
        let dense = WorkloadConfig {
            shape: GlobalShape::Dag {
                depth: 4,
                max_width: 3,
                edge_density: 1.0,
            },
            ..dag_config()
        };
        let mut fs = factory(sparse, 62);
        let mut fd = factory(dense, 62);
        let mut run = DagRun::new();
        let (mut total_sparse, mut total_dense) = (0usize, 0usize);
        for _ in 0..200 {
            fs.make_global_dag(0.0, &mut run);
            // Density 0: only the connectivity skeleton, at most one
            // mandatory predecessor per node plus one rescue successor
            // per dead end.
            assert!(run.edge_count() < 2 * run.simple_count());
            total_sparse += run.edge_count();
            fd.make_global_dag(0.0, &mut run);
            total_dense += run.edge_count();
        }
        assert!(
            total_dense > 2 * total_sparse,
            "density 1 ({total_dense}) must far exceed density 0 ({total_sparse})"
        );
    }

    #[test]
    fn dag_density_one_consecutive_layers_are_fully_connected() {
        use sda_core::DagRun;
        let dense = WorkloadConfig {
            shape: GlobalShape::Dag {
                depth: 3,
                max_width: 3,
                edge_density: 1.0,
            },
            ..dag_config()
        };
        let mut f = factory(dense, 63);
        let mut run = DagRun::new();
        for _ in 0..50 {
            f.make_global_dag(0.0, &mut run);
            // Every source reaches every node of the next layer: nodes
            // whose predecessors are exactly the source set.
            let n = run.simple_count() as u32;
            let sources: Vec<u32> = (0..n).filter(|&i| run.predecessors(i).is_empty()).collect();
            for &s in &sources {
                for t in 0..n {
                    if run.predecessors(t).iter().all(|p| sources.contains(p))
                        && !run.predecessors(t).is_empty()
                    {
                        assert!(
                            run.successors(s).contains(&t),
                            "density 1: source {s} missing edge to layer-1 node {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "make_global_dag")]
    fn flat_fill_rejects_dag_shapes() {
        let mut f = factory(dag_config(), 64);
        let mut run = FlatRun::new();
        f.make_global_flat(0.0, &mut run);
    }

    #[test]
    #[should_panic(expected = "requires GlobalShape::Dag")]
    fn dag_fill_rejects_tree_shapes() {
        use sda_core::DagRun;
        let mut f = factory(WorkloadConfig::baseline(), 65);
        let mut run = DagRun::new();
        f.make_global_dag(0.0, &mut run);
    }

    #[test]
    fn specs_validate() {
        for cfg in [
            WorkloadConfig::baseline(),
            WorkloadConfig::psp_baseline(),
            WorkloadConfig::combined_baseline(),
        ] {
            let mut f = factory(cfg, 25);
            for _ in 0..100 {
                assert!(f.make_global(0.0).spec.validate().is_ok());
            }
        }
    }
}
