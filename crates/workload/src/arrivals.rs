//! Time-varying arrival processes.
//!
//! The paper's workload model drives every task stream with a stationary
//! Poisson process. Real traffic is bursty and phased, so this module
//! generalizes the *arrival side* of the model while leaving the mean
//! rate — and therefore the configured [`load`](crate::WorkloadConfig::load)
//! — untouched:
//!
//! * [`ArrivalProcess::Poisson`] — the paper's stationary stream, and the
//!   default. Sampling is bit-identical to the pre-existing exponential
//!   interarrival path, so existing seeded runs reproduce exactly.
//! * [`ArrivalProcess::Mmpp2`] — a 2-state Markov-modulated Poisson
//!   process: the stream alternates between a *quiet* and a *burst*
//!   state (exponentially distributed dwell times) and arrives at a
//!   state-dependent rate. The two rates are normalized so the
//!   **time-average rate equals the configured one**; the `burst_ratio`
//!   controls how much burstier-than-Poisson the stream is (ratio 1
//!   degenerates to Poisson; the interarrival coefficient of variation
//!   grows with the ratio and the dwell times).
//! * [`ArrivalProcess::Phased`] — a deterministic, cyclic script of
//!   piecewise-constant rate factors (diurnal patterns, overload
//!   transients). Factors are likewise normalized to preserve the mean
//!   rate over one cycle, so a factor-2 overload phase really runs at
//!   twice the *configured* load while the quiet phases compensate.
//!
//! Every stream (each node's local stream and the global stream) owns
//! an independent [`ArrivalSampler`] holding the per-stream state (MMPP
//! phase, position in the cycle), so sampling the next interarrival gap
//! is O(segments) worst case, amortized O(1), and performs **no heap
//! allocation** — the samplers live inside the
//! [`TaskFactory`](crate::TaskFactory) for the whole run.
//!
//! See the crate root for how the processes plug into the rest of the
//! workload model.

use rand::Rng;
use serde::{Deserialize, Serialize};

use sda_sim::dist::Exponential;
use sda_sim::rng::Stream;

use crate::config::ConfigError;

/// One segment of a [`Phased`](ArrivalProcess::Phased) arrival script.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSegment {
    /// How long the segment lasts (time units; finite, > 0).
    pub duration: f64,
    /// The *relative* arrival-rate factor during the segment (finite,
    /// ≥ 0; a zero factor means a silent phase). Factors are normalized
    /// over the whole cycle, so only their ratios matter.
    pub rate_factor: f64,
}

impl PhaseSegment {
    /// A segment of `duration` time units at relative rate `rate_factor`.
    pub fn new(duration: f64, rate_factor: f64) -> PhaseSegment {
        PhaseSegment {
            duration,
            rate_factor,
        }
    }
}

/// The arrival-process family a workload's task streams draw from.
///
/// All variants have the **same time-average rate** (the one derived
/// from `load`/`frac_local`); they differ in how arrivals cluster in
/// time: `Poisson` is the paper's stationary stream (bit-identical to
/// the pre-existing sampler), `Mmpp2` alternates quiet/burst states
/// with exponential dwells, and `Phased` follows a deterministic cyclic
/// rate script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalProcess {
    /// Stationary Poisson arrivals — the paper's model and the default.
    /// Bit-identical to the pre-`ArrivalProcess` implementation.
    #[default]
    Poisson,
    /// 2-state Markov-modulated Poisson process (quiet ↔ burst).
    Mmpp2 {
        /// Arrival-rate ratio burst/quiet (finite, > 0; > 1 for actual
        /// bursts — exactly 1 degenerates to Poisson).
        burst_ratio: f64,
        /// Mean dwell time in the quiet state (finite, > 0).
        dwell_quiet: f64,
        /// Mean dwell time in the burst state (finite, > 0).
        dwell_burst: f64,
    },
    /// A cyclic script of piecewise-constant rate factors.
    Phased {
        /// The segments, visited in order and repeated forever. Must be
        /// non-empty with at least one positive `rate_factor`.
        segments: Vec<PhaseSegment>,
    },
}

impl ArrivalProcess {
    /// Whether this is the paper's stationary Poisson process.
    pub fn is_poisson(&self) -> bool {
        matches!(self, ArrivalProcess::Poisson)
    }

    /// Checks the process parameters.
    ///
    /// MMPP parameters are reported as indexed entries of
    /// `arrival_process.mmpp2` (0 = `burst_ratio`, 1 = `dwell_quiet`,
    /// 2 = `dwell_burst`); phased-segment errors name the offending
    /// segment index.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ArrivalProcess::Poisson => Ok(()),
            ArrivalProcess::Mmpp2 {
                burst_ratio,
                dwell_quiet,
                dwell_burst,
            } => {
                let entries = [(0usize, *burst_ratio), (1, *dwell_quiet), (2, *dwell_burst)];
                for (index, value) in entries {
                    if !(value.is_finite() && value > 0.0) {
                        return Err(ConfigError::InvalidEntry {
                            what: "arrival_process.mmpp2",
                            index,
                            constraint: "finite and > 0",
                            value,
                        });
                    }
                }
                Ok(())
            }
            ArrivalProcess::Phased { segments } => {
                if segments.is_empty() {
                    return Err(ConfigError::OutOfRange {
                        what: "arrival_process.phased segments",
                        constraint: "at least one segment",
                        value: 0.0,
                    });
                }
                for (i, seg) in segments.iter().enumerate() {
                    if !(seg.duration.is_finite() && seg.duration > 0.0) {
                        return Err(ConfigError::InvalidEntry {
                            what: "arrival_process.phased duration",
                            index: i,
                            constraint: "finite and > 0",
                            value: seg.duration,
                        });
                    }
                    if !(seg.rate_factor.is_finite() && seg.rate_factor >= 0.0) {
                        return Err(ConfigError::InvalidEntry {
                            what: "arrival_process.phased rate_factor",
                            index: i,
                            constraint: "finite and ≥ 0",
                            value: seg.rate_factor,
                        });
                    }
                }
                let mean = segments
                    .iter()
                    .map(|s| s.duration * s.rate_factor)
                    .sum::<f64>()
                    / segments.iter().map(|s| s.duration).sum::<f64>();
                // NaN factors were rejected above, so this is a plain
                // all-silent-cycle check.
                if mean <= 0.0 {
                    return Err(ConfigError::OutOfRange {
                        what: "arrival_process.phased mean rate factor",
                        constraint: "> 0 over one cycle",
                        value: mean,
                    });
                }
                Ok(())
            }
        }
    }

    /// The time-average of the raw (un-normalized) rate multiplier —
    /// the constant every multiplier is divided by so the process keeps
    /// the configured mean rate. 1 for Poisson.
    pub fn mean_rate_factor(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson => 1.0,
            ArrivalProcess::Mmpp2 {
                burst_ratio,
                dwell_quiet,
                dwell_burst,
            } => {
                // Stationary fraction of time in each state is
                // proportional to its mean dwell.
                (dwell_quiet + dwell_burst * burst_ratio) / (dwell_quiet + dwell_burst)
            }
            ArrivalProcess::Phased { segments } => {
                segments
                    .iter()
                    .map(|s| s.duration * s.rate_factor)
                    .sum::<f64>()
                    / segments.iter().map(|s| s.duration).sum::<f64>()
            }
        }
    }
}

/// Per-stream sampler state for one arrival stream under an
/// [`ArrivalProcess`]. Built once per stream by the
/// [`TaskFactory`](crate::TaskFactory); sampling allocates nothing.
#[derive(Debug, Clone)]
pub enum ArrivalSampler {
    /// Stationary Poisson: one exponential draw per gap — the exact
    /// pre-existing sampling path, bit for bit.
    Poisson(Exponential),
    /// 2-state MMPP: alternates exponential dwells between a quiet and a
    /// burst phase; within a phase arrivals are Poisson at the phase
    /// rate. Exactness rests on the memorylessness of the exponential:
    /// at a phase switch the residual time to the next arrival is
    /// redrawn at the new rate.
    Mmpp2 {
        /// Interarrival distribution per state (0 = quiet, 1 = burst).
        arrive: [Exponential; 2],
        /// Dwell-time distribution per state.
        dwell: [Exponential; 2],
        /// Current state (0 = quiet, 1 = burst).
        state: usize,
        /// Time remaining in the current state.
        dwell_left: f64,
        /// Whether the initial dwell has been drawn yet.
        primed: bool,
    },
    /// Cyclic piecewise-constant rates, sampled exactly by inverting the
    /// cumulative intensity: one unit-exponential draw per gap,
    /// integrated through the (deterministic) rate script.
    Phased {
        /// Absolute arrival rate per segment (normalized so the cycle
        /// mean is the configured rate).
        rates: Vec<f64>,
        /// Segment durations.
        durations: Vec<f64>,
        /// Index of the segment the stream clock is currently in.
        segment: usize,
        /// Time already consumed inside the current segment.
        into_segment: f64,
    },
}

impl ArrivalSampler {
    /// Builds the sampler for one stream of mean rate `rate`; `None` if
    /// the stream generates nothing (`rate ≤ 0`). The process must have
    /// been validated.
    pub fn new(process: &ArrivalProcess, rate: f64) -> Option<ArrivalSampler> {
        if rate <= 0.0 {
            return None;
        }
        Some(match process {
            ArrivalProcess::Poisson => {
                ArrivalSampler::Poisson(Exponential::with_rate(rate).expect("positive rate"))
            }
            ArrivalProcess::Mmpp2 {
                burst_ratio,
                dwell_quiet,
                dwell_burst,
            } => {
                let norm = process.mean_rate_factor();
                let quiet_rate = rate / norm;
                let burst_rate = rate * burst_ratio / norm;
                ArrivalSampler::Mmpp2 {
                    arrive: [
                        Exponential::with_rate(quiet_rate).expect("validated ratio"),
                        Exponential::with_rate(burst_rate).expect("validated ratio"),
                    ],
                    dwell: [
                        Exponential::with_mean(*dwell_quiet).expect("validated dwell"),
                        Exponential::with_mean(*dwell_burst).expect("validated dwell"),
                    ],
                    state: 0,
                    dwell_left: 0.0,
                    primed: false,
                }
            }
            ArrivalProcess::Phased { segments } => {
                let norm = process.mean_rate_factor();
                ArrivalSampler::Phased {
                    rates: segments
                        .iter()
                        .map(|s| rate * s.rate_factor / norm)
                        .collect(),
                    durations: segments.iter().map(|s| s.duration).collect(),
                    segment: 0,
                    into_segment: 0.0,
                }
            }
        })
    }

    /// Draws the gap to the stream's next arrival, advancing the
    /// per-stream state. Allocation-free.
    #[inline]
    pub fn sample_with(&mut self, rng: &mut Stream) -> f64 {
        match self {
            ArrivalSampler::Poisson(exp) => exp.sample_with(rng),
            ArrivalSampler::Mmpp2 {
                arrive,
                dwell,
                state,
                dwell_left,
                primed,
            } => {
                if !*primed {
                    *dwell_left = dwell[*state].sample_with(rng);
                    *primed = true;
                }
                let mut gap = 0.0;
                loop {
                    let e = arrive[*state].sample_with(rng);
                    if e <= *dwell_left {
                        *dwell_left -= e;
                        return gap + e;
                    }
                    // No arrival before the phase switch: consume the
                    // rest of the dwell and redraw in the next state
                    // (exact, by memorylessness).
                    gap += *dwell_left;
                    *state ^= 1;
                    *dwell_left = dwell[*state].sample_with(rng);
                }
            }
            ArrivalSampler::Phased {
                rates,
                durations,
                segment,
                into_segment,
            } => {
                // Invert the cumulative intensity: find t with
                // ∫ λ(s) ds = E, E ~ Exp(1).
                let u: f64 = rng.gen();
                let mut target = -(1.0 - u).ln();
                let mut gap = 0.0;
                loop {
                    let rate = rates[*segment];
                    let room = durations[*segment] - *into_segment;
                    if rate > 0.0 {
                        let t = target / rate;
                        if t <= room {
                            *into_segment += t;
                            return gap + t;
                        }
                        target -= room * rate;
                    }
                    gap += room;
                    *segment = (*segment + 1) % durations.len();
                    *into_segment = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_sim::rng::RngFactory;

    fn stream(seed: u64) -> Stream {
        RngFactory::new(seed).stream("arrivals-test")
    }

    #[test]
    fn poisson_sampler_matches_raw_exponential_bit_exactly() {
        let mut a = ArrivalSampler::new(&ArrivalProcess::Poisson, 0.375).unwrap();
        let exp = Exponential::with_rate(0.375).unwrap();
        let mut ra = stream(1);
        let mut rb = stream(1);
        for _ in 0..1000 {
            assert_eq!(
                a.sample_with(&mut ra).to_bits(),
                exp.sample_with(&mut rb).to_bits()
            );
        }
    }

    #[test]
    fn zero_rate_builds_no_sampler() {
        assert!(ArrivalSampler::new(&ArrivalProcess::Poisson, 0.0).is_none());
        let mmpp = ArrivalProcess::Mmpp2 {
            burst_ratio: 4.0,
            dwell_quiet: 100.0,
            dwell_burst: 25.0,
        };
        assert!(ArrivalSampler::new(&mmpp, -1.0).is_none());
    }

    #[test]
    fn mmpp_long_run_rate_matches_mean() {
        let process = ArrivalProcess::Mmpp2 {
            burst_ratio: 6.0,
            dwell_quiet: 120.0,
            dwell_burst: 40.0,
        };
        process.validate().unwrap();
        let rate = 0.8;
        let mut s = ArrivalSampler::new(&process, rate).unwrap();
        let mut rng = stream(7);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| s.sample_with(&mut rng)).sum();
        let empirical = n as f64 / total;
        assert!(
            (empirical - rate).abs() / rate < 0.05,
            "empirical rate {empirical} vs configured {rate}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Squared CV of the interarrival gaps must exceed the
        // exponential's 1 for a real burst ratio.
        let process = ArrivalProcess::Mmpp2 {
            burst_ratio: 8.0,
            dwell_quiet: 200.0,
            dwell_burst: 50.0,
        };
        let mut s = ArrivalSampler::new(&process, 1.0).unwrap();
        let mut rng = stream(8);
        let n = 100_000;
        let gaps: Vec<f64> = (0..n).map(|_| s.sample_with(&mut rng)).collect();
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.3, "MMPP cv² {cv2} should exceed Poisson's 1");
    }

    #[test]
    fn phased_long_run_rate_matches_mean() {
        let process = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(400.0, 1.0), PhaseSegment::new(100.0, 2.5)],
        };
        process.validate().unwrap();
        let rate = 0.5;
        let mut s = ArrivalSampler::new(&process, rate).unwrap();
        let mut rng = stream(9);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| s.sample_with(&mut rng)).sum();
        let empirical = n as f64 / total;
        assert!(
            (empirical - rate).abs() / rate < 0.05,
            "empirical rate {empirical} vs configured {rate}"
        );
    }

    #[test]
    fn phased_silent_segments_produce_no_arrivals_inside_them() {
        // Cycle: 10 units at factor 2, then 10 silent units. Arrival
        // positions (mod 20, tracked by the sampler's own clock) must
        // all land in the first half.
        let process = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(10.0, 2.0), PhaseSegment::new(10.0, 0.0)],
        };
        let mut s = ArrivalSampler::new(&process, 1.0).unwrap();
        let mut rng = stream(10);
        let mut clock = 0.0;
        for _ in 0..5_000 {
            clock += s.sample_with(&mut rng);
            let phase = clock % 20.0;
            assert!(
                phase <= 10.0 + 1e-9,
                "arrival at cycle position {phase} inside the silent phase"
            );
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Mmpp2 {
                burst_ratio: 3.0,
                dwell_quiet: 50.0,
                dwell_burst: 10.0,
            },
            ArrivalProcess::Phased {
                segments: vec![PhaseSegment::new(30.0, 0.5), PhaseSegment::new(10.0, 3.0)],
            },
        ] {
            let mut a = ArrivalSampler::new(&process, 0.7).unwrap();
            let mut b = ArrivalSampler::new(&process, 0.7).unwrap();
            let mut ra = stream(42);
            let mut rb = stream(42);
            for _ in 0..2_000 {
                assert_eq!(
                    a.sample_with(&mut ra).to_bits(),
                    b.sample_with(&mut rb).to_bits()
                );
            }
        }
    }

    #[test]
    fn validation_rejects_degenerate_processes() {
        assert!(ArrivalProcess::Poisson.validate().is_ok());
        let bad_ratio = ArrivalProcess::Mmpp2 {
            burst_ratio: 0.0,
            dwell_quiet: 10.0,
            dwell_burst: 10.0,
        };
        assert_eq!(
            bad_ratio.validate(),
            Err(ConfigError::InvalidEntry {
                what: "arrival_process.mmpp2",
                index: 0,
                constraint: "finite and > 0",
                value: 0.0,
            })
        );
        let bad_dwell = ArrivalProcess::Mmpp2 {
            burst_ratio: 2.0,
            dwell_quiet: 10.0,
            dwell_burst: -3.0,
        };
        assert_eq!(
            bad_dwell.validate(),
            Err(ConfigError::InvalidEntry {
                what: "arrival_process.mmpp2",
                index: 2,
                constraint: "finite and > 0",
                value: -3.0,
            })
        );
        assert!(ArrivalProcess::Phased { segments: vec![] }
            .validate()
            .is_err());
    }

    #[test]
    fn mean_rate_factor_normalizes() {
        let mmpp = ArrivalProcess::Mmpp2 {
            burst_ratio: 4.0,
            dwell_quiet: 300.0,
            dwell_burst: 100.0,
        };
        // (300·1 + 100·4)/400 = 1.75.
        assert!((mmpp.mean_rate_factor() - 1.75).abs() < 1e-12);
        let phased = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(10.0, 1.0), PhaseSegment::new(10.0, 3.0)],
        };
        assert!((phased.mean_rate_factor() - 2.0).abs() < 1e-12);
        assert_eq!(ArrivalProcess::Poisson.mean_rate_factor(), 1.0);
    }
}
