//! Structural shapes of global tasks.

use serde::{Deserialize, Serialize};

/// The structure of generated global tasks.
///
/// The paper evaluates three families: flat serial chains (§4, SSP), flat
/// parallel fans (§5, PSP) and serial-parallel compositions (§6). The
/// heterogeneous-`m` variant is the §4.3 extension where tasks differ in
/// their number of stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GlobalShape {
    /// `T = [T1 T2 … Tm]` — `m` simple subtasks in series, nodes drawn
    /// uniformly at random (with replacement).
    Serial {
        /// Number of stages `m`.
        m: usize,
    },
    /// `T = [T1 ∥ … ∥ Tm]` — `m` simple subtasks in parallel at `m`
    /// *different* nodes (§5.2).
    Parallel {
        /// Number of branches `m` (must not exceed the node count).
        m: usize,
    },
    /// Serial chain whose length is drawn uniformly from
    /// `min_m..=max_m` per task (§4.3, "different number of subtasks").
    SerialRandomM {
        /// Smallest chain length (≥ 1).
        min_m: usize,
        /// Largest chain length.
        max_m: usize,
    },
    /// A pipeline of parallel fans: `stages` serial stages, each a
    /// parallel group of `branches` simple subtasks on distinct nodes —
    /// the §6 serial-parallel workload (think: gather ∥ → filter ∥ →
    /// act ∥).
    SerialParallel {
        /// Number of serial stages.
        stages: usize,
        /// Parallel branches per stage.
        branches: usize,
    },
    /// A random layered precedence **DAG** — the generalization beyond
    /// the paper's serial-parallel trees (fork-join trees, diamonds,
    /// layered pipelines with cross-stage edges). Each task draws
    /// `depth` layers of `U[1, max_width]` subtasks (distinct nodes
    /// within a layer); every node is connected to the adjacent layers
    /// (the DAG is weakly connected and acyclic by construction), and
    /// optional extra forward edges appear with probability
    /// `edge_density / 2^(gap − 1)` per candidate pair, where `gap` is
    /// the number of layers skipped forward — so `edge_density` directly
    /// sets the density between consecutive layers, and cross-stage
    /// edges thin out geometrically with distance. At `edge_density = 1`
    /// consecutive layers are fully connected (the stage-structured DAG
    /// that reproduces [`FlatRun`](sda_core::FlatRun) deadlines
    /// bit-exactly).
    Dag {
        /// Number of layers (≥ 1).
        depth: usize,
        /// Largest layer width (≥ 1, at most the node count).
        max_width: usize,
        /// Optional-edge probability in `[0, 1]` (see above).
        edge_density: f64,
    },
}

impl GlobalShape {
    /// Expected number of simple subtasks per task.
    pub fn expected_subtasks(&self) -> f64 {
        match *self {
            GlobalShape::Serial { m } | GlobalShape::Parallel { m } => m as f64,
            GlobalShape::SerialRandomM { min_m, max_m } => (min_m + max_m) as f64 / 2.0,
            GlobalShape::SerialParallel { stages, branches } => (stages * branches) as f64,
            // Layer widths are uniform on [1, max_width].
            GlobalShape::Dag {
                depth, max_width, ..
            } => depth as f64 * (1 + max_width) as f64 / 2.0,
        }
    }

    /// Expected *critical-path* execution time in units of the mean
    /// subtask execution time.
    ///
    /// Serial chains: `m` (all stages on the path). Parallel fans: the
    /// expected maximum of `m` i.i.d. exponentials, which is the harmonic
    /// number `H_m`. Pipelines of fans: `stages · H_branches`.
    pub fn expected_critical_path_factor(&self) -> f64 {
        match *self {
            GlobalShape::Serial { m } => m as f64,
            GlobalShape::SerialRandomM { min_m, max_m } => (min_m + max_m) as f64 / 2.0,
            GlobalShape::Parallel { m } => harmonic(m),
            GlobalShape::SerialParallel { stages, branches } => stages as f64 * harmonic(branches),
            // One node per layer lies on every source-to-sink path; the
            // expected per-layer maximum over a U[1, max_width]-wide
            // antichain of unit-mean exponentials is E[H_W]. Cross-layer
            // edges only re-route the path, they cannot lengthen it
            // beyond one node per layer.
            GlobalShape::Dag {
                depth, max_width, ..
            } => {
                let mean_h = (1..=max_width).map(harmonic).sum::<f64>() / max_width as f64;
                depth as f64 * mean_h
            }
        }
    }

    /// Whether parallel groups appear anywhere in the shape.
    pub fn has_parallelism(&self) -> bool {
        matches!(
            self,
            GlobalShape::Parallel { .. }
                | GlobalShape::SerialParallel { .. }
                | GlobalShape::Dag { .. }
        )
    }

    /// The largest parallel fan width the shape can produce (`1` for
    /// purely serial shapes). Must not exceed the node count when nodes
    /// are drawn without replacement.
    pub fn max_fan_width(&self) -> usize {
        match *self {
            GlobalShape::Serial { .. } | GlobalShape::SerialRandomM { .. } => 1,
            GlobalShape::Parallel { m } => m,
            GlobalShape::SerialParallel { branches, .. } => branches,
            GlobalShape::Dag { max_width, .. } => max_width,
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            GlobalShape::Serial { m } => format!("serial-{m}"),
            GlobalShape::Parallel { m } => format!("parallel-{m}"),
            GlobalShape::SerialRandomM { min_m, max_m } => format!("serial-{min_m}..{max_m}"),
            GlobalShape::SerialParallel { stages, branches } => {
                format!("pipe-{stages}x{branches}")
            }
            GlobalShape::Dag {
                depth,
                max_width,
                edge_density,
            } => format!("dag-{depth}x{max_width}-e{edge_density}"),
        }
    }
}

/// The n-th harmonic number `H_n = Σ_{i=1..n} 1/i` — the expected maximum
/// of `n` i.i.d. unit-mean exponentials.
pub(crate) fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_numbers() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn expected_subtasks_per_shape() {
        assert_eq!(GlobalShape::Serial { m: 4 }.expected_subtasks(), 4.0);
        assert_eq!(GlobalShape::Parallel { m: 4 }.expected_subtasks(), 4.0);
        assert_eq!(
            GlobalShape::SerialRandomM { min_m: 2, max_m: 6 }.expected_subtasks(),
            4.0
        );
        assert_eq!(
            GlobalShape::SerialParallel {
                stages: 3,
                branches: 2
            }
            .expected_subtasks(),
            6.0
        );
    }

    #[test]
    fn critical_path_factors() {
        assert_eq!(
            GlobalShape::Serial { m: 4 }.expected_critical_path_factor(),
            4.0
        );
        let h4 = harmonic(4);
        assert!(
            (GlobalShape::Parallel { m: 4 }.expected_critical_path_factor() - h4).abs() < 1e-12
        );
        assert!(
            (GlobalShape::SerialParallel {
                stages: 3,
                branches: 4
            }
            .expected_critical_path_factor()
                - 3.0 * h4)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn fan_widths_and_labels() {
        assert_eq!(GlobalShape::Serial { m: 9 }.max_fan_width(), 1);
        assert_eq!(GlobalShape::Parallel { m: 5 }.max_fan_width(), 5);
        assert_eq!(
            GlobalShape::SerialParallel {
                stages: 2,
                branches: 3
            }
            .max_fan_width(),
            3
        );
        assert_eq!(GlobalShape::Serial { m: 4 }.label(), "serial-4");
        assert_eq!(
            GlobalShape::SerialParallel {
                stages: 2,
                branches: 3
            }
            .label(),
            "pipe-2x3"
        );
        assert!(GlobalShape::Parallel { m: 2 }.has_parallelism());
        assert!(!GlobalShape::Serial { m: 2 }.has_parallelism());
    }

    #[test]
    fn dag_shape_expectations() {
        let dag = GlobalShape::Dag {
            depth: 4,
            max_width: 3,
            edge_density: 0.5,
        };
        // E[width] = (1 + 3)/2 = 2 per layer, 4 layers.
        assert_eq!(dag.expected_subtasks(), 8.0);
        // E[H_W] over W ∈ {1, 2, 3} = (1 + 1.5 + 11/6)/3, times depth.
        let mean_h = (harmonic(1) + harmonic(2) + harmonic(3)) / 3.0;
        assert!((dag.expected_critical_path_factor() - 4.0 * mean_h).abs() < 1e-12);
        assert!(dag.has_parallelism());
        assert_eq!(dag.max_fan_width(), 3);
        assert_eq!(dag.label(), "dag-4x3-e0.5");
    }
}
