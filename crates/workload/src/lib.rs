//! # sda-workload — the paper's stochastic workload model
//!
//! Implements the task-generation model of Kao & Garcia-Molina §4.1/§5.2:
//!
//! * **Local tasks**: per-node Poisson streams (mean interarrival
//!   `1/λ_local`), exponential execution times (mean `1/μ_local = 1`),
//!   slack uniform on `[Smin, Smax]`.
//! * **Global tasks**: one Poisson stream (mean interarrival
//!   `1/λ_global`); each task has `m` subtasks with i.i.d. exponential
//!   execution times (mean `1/μ_subtask`), so a serial task's total work
//!   is m-stage Erlang. Subtask nodes are drawn uniformly (serial), or
//!   distinct (parallel fans, as in §5.2).
//! * **Parameterization by `load` and `frac_local`** (§4.1):
//!   arrival rates are *derived* from the target normalized load, the
//!   local fraction, and the expected work per task — see
//!   [`WorkloadConfig::rates`].
//! * **`rel_flex`**: the relative flexibility of global vs local tasks;
//!   global serial slack is scaled so the classes' mean flexibility ratio
//!   is `rel_flex` (exactly the baseline's "same average flexibility"
//!   property at 1.0).
//! * **Prediction error** ([`PexModel`]): the paper's §4.3 extension where
//!   `pex` deviates from `ex`.
//! * **Heterogeneous nodes** (`WorkloadConfig::node_speeds`): optional
//!   per-node speed factors; every task served at node `i` takes
//!   `ex / node_speeds[i]` time units and predictions scale identically,
//!   so deadline assignment reasons in node-local service time. `None`
//!   (or all-1.0) reproduces the paper's homogeneous model bit-exactly.
//!   `WorkloadConfig::local_weights` independently skews the *arrival*
//!   side (§4.3's unbalanced local loads).
//! * **DAG-structured tasks** ([`GlobalShape::Dag`]): random layered
//!   precedence DAGs with width/depth/edge-density knobs — weakly
//!   connected and acyclic by construction, cross-layer edges included —
//!   filled into a pooled [`DagRun`](sda_core::DagRun) by
//!   [`TaskFactory::make_global_dag`], with deadlines scaled by each
//!   task's own critical-path depth.
//! * **Time-varying arrivals** ([`ArrivalProcess`]): the paper's
//!   stationary Poisson streams (default, bit-identical to the original
//!   sampler), a 2-state Markov-modulated Poisson process for bursts, or
//!   a cyclic phased-rate script for diurnal patterns and overload
//!   transients — all normalized to keep the configured mean `load`.
//!
//! The crate is deterministic given an [`RngFactory`](sda_sim::rng::RngFactory):
//! every stochastic component draws from its own named stream.
//!
//! ```
//! use sda_workload::{GlobalShape, WorkloadConfig, TaskFactory};
//! use sda_sim::rng::RngFactory;
//!
//! let cfg = WorkloadConfig::baseline(); // Table 1
//! let rates = cfg.rates()?;
//! assert!((rates.lambda_local_per_node - 0.375).abs() < 1e-12);
//! assert!((rates.lambda_global - 0.1875).abs() < 1e-12);
//!
//! let mut factory = TaskFactory::new(cfg, &RngFactory::new(42))?;
//! let now = 0.0;
//! let global = factory.make_global(now);
//! assert_eq!(global.spec.simple_count(), 4);
//! # Ok::<(), sda_workload::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arrivals;
mod config;
mod generator;
mod pex;
mod service;
mod shape;

pub use arrivals::{ArrivalProcess, ArrivalSampler, PhaseSegment};
pub use config::{ConfigError, DerivedRates, SlackRange, WorkloadConfig};
pub use generator::{GlobalTask, LocalTask, TaskFactory};
pub use pex::PexModel;
pub use service::ServiceVariability;
pub use shape::GlobalShape;
