//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use sda_sim::dist::{Dist, Erlang, Exponential, Uniform};
use sda_sim::rng::RngFactory;
use sda_sim::stats::{BatchMeans, Histogram, Ratio, Tally};
use sda_sim::{EventQueue, SimTime};

proptest! {
    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO order among equal times —
    /// i.e. it is a stable sort of the input by time.
    #[test]
    fn event_queue_is_stable_time_sort(times in prop::collection::vec(0.0f64..100.0, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            // Quantize times so duplicates actually occur.
            q.schedule(SimTime::from((t * 4.0).floor() / 4.0), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.time, ev.event));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_is_exact(
        n in 1usize..100,
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..n).map(|i| q.schedule(SimTime::from(i as f64), i)).collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, h) in handles.iter().enumerate() {
            if cancel_mask[i] {
                prop_assert!(q.cancel(*h));
            } else {
                expect.push(i);
            }
        }
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            got.push(ev.event);
        }
        prop_assert_eq!(got, expect);
    }

    /// The slab queue matches a naive reference model under arbitrary
    /// interleavings of both scheduling paths, cancellation and popping:
    /// pops come in (time, insertion) order, exactly the non-cancelled
    /// events come out, cancel is idempotent, and stale generations
    /// (fired or cancelled handles, including after slot reuse) never
    /// cancel anything.
    #[test]
    fn slab_queue_matches_reference_model(
        ops in prop::collection::vec((0u8..4, 0.0f64..64.0, any::<u64>()), 1..400),
    ) {
        let mut q = EventQueue::new();
        // Reference: (time, seq, id) of still-pending events, plus the
        // clock floor pops must never go below.
        let mut pending: Vec<(f64, usize, usize)> = Vec::new();
        let mut handles = Vec::new();
        let mut dead_handles = Vec::new();
        let mut id = 0usize;
        let mut popped_total = 0usize;
        for (op, t, pick) in ops {
            // Quantize times so equal-time FIFO ordering is exercised.
            let t = (t * 2.0).floor() / 2.0;
            match op {
                0 => {
                    let h = q.schedule(SimTime::from(t), id);
                    handles.push((h, id));
                    pending.push((t, id, id));
                    id += 1;
                }
                1 => {
                    q.schedule_fast(SimTime::from(t), id);
                    pending.push((t, id, id));
                    id += 1;
                }
                2 if !handles.is_empty() => {
                    let k = (pick as usize) % handles.len();
                    let (h, hid) = handles.swap_remove(k);
                    let was_pending = pending.iter().any(|&(_, _, i)| i == hid);
                    prop_assert_eq!(q.cancel(h), was_pending, "cancel({hid})");
                    prop_assert!(!q.cancel(h), "cancel must be idempotent");
                    pending.retain(|&(_, _, i)| i != hid);
                    dead_handles.push(h);
                }
                _ => {
                    pending.sort_by(|a, b| {
                        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                    });
                    let expect = if pending.is_empty() {
                        None
                    } else {
                        Some(pending.remove(0))
                    };
                    match (q.pop(), expect) {
                        (None, None) => {}
                        (Some(got), Some((et, _, eid))) => {
                            prop_assert_eq!(got.event, eid);
                            prop_assert_eq!(got.time, SimTime::from(et));
                            // A popped cancellable event's handle is dead.
                            if let Some(k) = handles.iter().position(|&(_, i)| i == eid) {
                                let (h, _) = handles.swap_remove(k);
                                prop_assert!(!q.cancel(h), "fired handle is dead");
                                dead_handles.push(h);
                            }
                            popped_total += 1;
                        }
                        (got, expect) => {
                            prop_assert!(false, "pop mismatch: got {got:?}, expected {expect:?}");
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), pending.len());
        }
        // Every dead handle stays dead even after heavy slot reuse.
        for h in dead_handles {
            prop_assert!(!q.cancel(h), "stale generation resurrected");
        }
        // Drain: the remainder comes out in reference order.
        pending.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (et, _, eid) in pending {
            let got = q.pop().expect("queue drained early");
            prop_assert_eq!(got.event, eid);
            prop_assert_eq!(got.time, SimTime::from(et));
            popped_total += 1;
        }
        prop_assert!(q.pop().is_none());
        prop_assert_eq!(q.scheduled_total(), id as u64);
        prop_assert!(popped_total <= id);
    }

    /// `pop_at_or_before(h)` returns exactly the events `pop` would,
    /// stopping at the horizon, for arbitrary schedules and horizons.
    #[test]
    fn pop_at_or_before_agrees_with_pop(
        times in prop::collection::vec(0.0f64..100.0, 0..150),
        horizon in 0.0f64..120.0,
    ) {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            let t = (t * 4.0).floor() / 4.0;
            if i % 3 == 0 {
                a.schedule(SimTime::from(t), i);
                b.schedule(SimTime::from(t), i);
            } else {
                a.schedule_fast(SimTime::from(t), i);
                b.schedule_fast(SimTime::from(t), i);
            }
        }
        let h = SimTime::from(horizon);
        loop {
            let via_bounded = a.pop_at_or_before(h);
            let expected = match b.peek_time() {
                Some(t) if t <= h => b.pop(),
                _ => None,
            };
            prop_assert_eq!(&via_bounded, &expected);
            if via_bounded.is_none() {
                break;
            }
        }
        // The bounded pop left everything beyond the horizon untouched.
        prop_assert_eq!(a.len(), b.len());
    }

    /// Welford tally matches the naive two-pass computation.
    #[test]
    fn tally_matches_two_pass(xs in prop::collection::vec(-1e3f64..1e3, 2..300)) {
        let t: Tally = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((t.mean() - mean).abs() < 1e-6);
        prop_assert!((t.variance() - var).abs() < 1e-4 * var.max(1.0));
        prop_assert_eq!(t.count(), xs.len() as u64);
    }

    /// Merging split tallies equals the whole, at any split point.
    #[test]
    fn tally_merge_associative(xs in prop::collection::vec(-50.0f64..50.0, 2..100), cut in 0usize..100) {
        let cut = cut % xs.len();
        let (a, b) = xs.split_at(cut);
        let mut ta: Tally = a.iter().copied().collect();
        let tb: Tally = b.iter().copied().collect();
        ta.merge(&tb);
        let whole: Tally = xs.iter().copied().collect();
        prop_assert!((ta.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((ta.variance() - whole.variance()).abs() < 1e-6);
    }

    /// Histogram conserves observations: total = in-bins + under + over.
    #[test]
    fn histogram_conserves_counts(xs in prop::collection::vec(-10.0f64..20.0, 0..500)) {
        let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
        for &x in &xs {
            h.add(x);
        }
        let binned: u64 = (0..h.num_bins()).map(|i| h.bin_count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// Uniform samples stay in range; exponential and Erlang samples are
    /// non-negative, for arbitrary parameters and seeds.
    #[test]
    fn distribution_supports(seed in any::<u64>(), lo in -5.0f64..5.0, width in 0.0f64..10.0, mean in 0.01f64..100.0) {
        let mut rng = RngFactory::new(seed).stream("support");
        let u = Uniform::new(lo, lo + width).unwrap();
        let e = Exponential::with_mean(mean).unwrap();
        let g = Erlang::new(3, mean).unwrap();
        for _ in 0..100 {
            let x = u.sample(&mut rng);
            prop_assert!(x >= lo - 1e-12 && x <= lo + width + 1e-12);
            prop_assert!(e.sample(&mut rng) >= 0.0);
            prop_assert!(g.sample(&mut rng) >= 0.0);
        }
    }

    /// Ratio merge adds counts; percent stays within [0, 100].
    #[test]
    fn ratio_merge_and_bounds(hits in prop::collection::vec(any::<bool>(), 0..200), cut in 0usize..200) {
        let cut = if hits.is_empty() { 0 } else { cut % hits.len() };
        let mut a = Ratio::new();
        let mut b = Ratio::new();
        for (i, &h) in hits.iter().enumerate() {
            if i < cut { a.record(h) } else { b.record(h) }
        }
        let mut merged = a;
        merged.merge(&b);
        prop_assert_eq!(merged.denominator(), hits.len() as u64);
        prop_assert_eq!(merged.numerator(), hits.iter().filter(|&&h| h).count() as u64);
        prop_assert!((0.0..=100.0).contains(&merged.percent()));
    }

    /// Batch means of a constant stream has zero-width CI at the value.
    #[test]
    fn batch_means_constant_stream(value in -100.0f64..100.0, batches in 2u64..20) {
        let mut bm = BatchMeans::new(10);
        for _ in 0..(batches * 10) {
            bm.add(value);
        }
        let ci = bm.confidence_interval().unwrap();
        prop_assert!((ci.mean - value).abs() < 1e-9);
        prop_assert!(ci.half_width.abs() < 1e-9);
    }

    /// Named RNG streams never collide for distinct labels (statistical:
    /// first outputs differ for a few hundred label pairs).
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), a in 0usize..500, b in 0usize..500) {
        prop_assume!(a != b);
        let f = RngFactory::new(seed);
        let mut sa = f.stream_indexed("lbl", a);
        let mut sb = f.stream_indexed("lbl", b);
        use rand::RngCore;
        prop_assert_ne!(sa.next_u64(), sb.next_u64());
    }
}
