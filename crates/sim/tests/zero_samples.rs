//! Zero-sample edge cases for every metric primitive that can end up in
//! a sweep CSV: empty inputs must yield well-defined values — never NaN —
//! and the guarantees must survive a round trip through the types'
//! copy/clone semantics.
//!
//! (The workspace builds against the offline `serde` stub, which keeps
//! the `#[derive(Serialize, Deserialize)]` annotations compiling but has
//! no serializer; the round trips below therefore exercise the value
//! semantics — `Copy`/`Clone` plus reconstruction — that a byte-level
//! serde round trip would traverse.)

use sda_sim::stats::{ConfidenceInterval, P2Quantile, Ratio, Replications, Tally};

#[test]
fn empty_ratio_is_zero_not_nan() {
    let r = Ratio::new();
    assert_eq!(r.fraction(), 0.0);
    assert_eq!(r.percent(), 0.0);
    assert!(!r.fraction().is_nan());
    assert_eq!(r.numerator(), 0);
    assert_eq!(r.denominator(), 0);

    // Round trip: Ratio is Copy; a copied empty ratio behaves identically
    // and diverges independently afterwards.
    let mut copy = r;
    assert_eq!(copy.fraction(), r.fraction());
    copy.record(true);
    assert_eq!(copy.percent(), 100.0);
    assert_eq!(r.percent(), 0.0);
}

#[test]
fn empty_tally_moments_are_well_defined() {
    let t = Tally::new();
    assert_eq!(t.count(), 0);
    assert_eq!(t.mean(), 0.0);
    assert_eq!(t.variance(), 0.0);
    assert_eq!(t.std_dev(), 0.0);
    assert_eq!(t.std_error(), 0.0);
    assert_eq!(t.sum(), 0.0);
    // min/max of an empty tally are the conventional identity elements;
    // they are infinite (documented), but not NaN.
    assert_eq!(t.min(), f64::INFINITY);
    assert_eq!(t.max(), f64::NEG_INFINITY);
    for v in [t.mean(), t.variance(), t.std_dev(), t.std_error(), t.sum()] {
        assert!(!v.is_nan());
    }

    // Round trip (Copy) preserves emptiness and every moment.
    let copy = t;
    assert_eq!(copy, t);
    assert!(copy.is_empty());

    // A single observation still has zero variance, not NaN.
    let mut one = t;
    one.add(7.5);
    assert_eq!(one.variance(), 0.0);
    assert!(!one.std_error().is_nan());
}

#[test]
fn empty_quantile_estimates_none_and_small_streams_are_exact() {
    let q = P2Quantile::new(0.95).unwrap();
    assert_eq!(q.estimate(), None, "no observation → no estimate");
    assert_eq!(q.count(), 0);

    // Round trip via Clone before initialization (the warm-up buffer is
    // the tricky state to preserve).
    let mut cloned = q.clone();
    assert_eq!(cloned.estimate(), None);
    for x in [3.0, 1.0, 2.0] {
        cloned.add(x);
    }
    let est = cloned.estimate().unwrap();
    assert!((1.0..=3.0).contains(&est));
    assert!(!est.is_nan());

    // Cloning mid-warm-up keeps the partial sample.
    let recloned = cloned.clone();
    assert_eq!(recloned.estimate(), cloned.estimate());
    assert_eq!(recloned.count(), 3);
}

#[test]
fn empty_replications_have_no_interval_but_finite_mean() {
    let r = Replications::new();
    assert_eq!(r.count(), 0);
    assert!(!r.mean().is_nan());
    assert!(
        r.confidence_interval().is_none(),
        "no replications → no CI, rather than a NaN-width one"
    );

    let mut one = r.clone();
    one.add(4.2);
    assert!(
        one.confidence_interval().is_none(),
        "a single replication has undefined spread"
    );
    assert_eq!(one.mean(), 4.2);
}

#[test]
fn degenerate_confidence_intervals_are_infinite_not_nan() {
    let ci = ConfidenceInterval::from_moments(5.0, 2.0, 1);
    assert_eq!(ci.half_width, f64::INFINITY);
    assert!(!ci.half_width.is_nan());
    // Zero spread gives a zero-width interval.
    let tight = ConfidenceInterval::from_moments(5.0, 0.0, 10);
    assert_eq!(tight.half_width, 0.0);
    assert!(tight.contains(5.0));
}

#[test]
fn zero_sample_class_metrics_never_leak_nan_into_csv_fields() {
    // The exact values a sweep CSV would read off an idle run: all
    // finite (or empty), none NaN.
    let t = Tally::new();
    let r = Ratio::new();
    let csv_cells = [r.percent(), t.mean(), t.std_error()];
    for cell in csv_cells {
        assert!(cell.is_finite(), "CSV cell {cell} must be finite");
    }
    let q = P2Quantile::new(0.99).unwrap();
    // An absent estimate is `None` — callers emit an empty field, not NaN.
    assert!(q.estimate().is_none());
}
