//! Probability distributions for the workload model.
//!
//! The paper's stochastic model needs exponential interarrival and service
//! times, uniform slack, and (implicitly, for global task totals) Erlang
//! sums. These are implemented via inverse-transform / convolution sampling
//! over any [`rand::RngCore`] source rather than pulling in `rand_distr`,
//! keeping the sampling code in-tree and auditable.
//!
//! All constructors validate their parameters ([`DistError`]); all types
//! report their analytic [`mean`](Dist::mean), which the workload crate
//! uses to derive arrival rates from a target utilization.
//!
//! ```
//! use sda_sim::dist::{Dist, Exponential};
//! use sda_sim::rng::RngFactory;
//!
//! let exp = Exponential::with_mean(2.0)?;
//! let mut rng = RngFactory::new(1).stream("svc");
//! let x = exp.sample(&mut rng);
//! assert!(x >= 0.0);
//! assert_eq!(exp.mean(), 2.0);
//! # Ok::<(), sda_sim::dist::DistError>(())
//! ```

use std::fmt;

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A parameter that must be strictly positive was zero, negative, NaN
    /// or infinite.
    NonPositive {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A range `[lo, hi]` with `lo > hi`, or a non-finite bound.
    BadRange {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// Mixture weights that do not form a probability vector.
    BadWeights,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositive { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            DistError::BadRange { lo, hi } => {
                write!(f, "invalid range [{lo}, {hi}]")
            }
            DistError::BadWeights => write!(f, "mixture weights must be positive and sum to 1"),
        }
    }
}

impl std::error::Error for DistError {}

fn require_positive(what: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DistError::NonPositive { what, value })
    }
}

/// A real-valued distribution that can be sampled from any RNG.
///
/// The trait is object-safe so heterogeneous models can hold
/// `Box<dyn Dist>`.
pub trait Dist: fmt::Debug {
    /// Draws one variate.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// The analytic mean of the distribution.
    fn mean(&self) -> f64;
}

/// The degenerate distribution: always returns the same value.
///
/// Used for deterministic-service sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(f64);

impl Constant {
    /// A constant distribution at `value` (must be finite).
    pub fn new(value: f64) -> Result<Constant, DistError> {
        if value.is_finite() {
            Ok(Constant(value))
        } else {
            Err(DistError::NonPositive {
                what: "constant value",
                value,
            })
        }
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Analytic variance (zero: every draw is the same value).
    pub fn variance(&self) -> f64 {
        0.0
    }
}

impl Constant {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.0
    }
}

impl Dist for Constant {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.0
    }
}

/// Continuous uniform on `[lo, hi]`.
///
/// The paper draws task *slack* from `U[Smin, Smax]` (baseline
/// `[0.25, 2.5]`; PSP experiments `[1.25, 5.0]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Uniform on `[lo, hi]`; requires finite bounds with `lo ≤ hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Uniform, DistError> {
        if lo.is_finite() && hi.is_finite() && lo <= hi {
            Ok(Uniform { lo, hi })
        } else {
            Err(DistError::BadRange { lo, hi })
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Analytic variance `(hi − lo)² / 12`.
    pub fn variance(&self) -> f64 {
        let span = self.hi - self.lo;
        span * span / 12.0
    }

    /// Returns a copy with both bounds multiplied by `factor ≥ 0`.
    ///
    /// Used to scale slack ranges by `rel_flex` and by the expected task
    /// size ratio (see `sda-workload`).
    pub fn scaled(&self, factor: f64) -> Result<Uniform, DistError> {
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(DistError::NonPositive {
                what: "scale factor",
                value: factor,
            });
        }
        Uniform::new(self.lo * factor, self.hi * factor)
    }
}

impl Uniform {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.lo + (self.hi - self.lo) * u
    }
}

impl Dist for Uniform {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Exponential distribution, parameterized by its mean `1/λ`.
///
/// Interarrival times of the paper's Poisson task streams and all service
/// times are exponential.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Exponential with the given mean (must be positive and finite).
    pub fn with_mean(mean: f64) -> Result<Exponential, DistError> {
        Ok(Exponential {
            mean: require_positive("exponential mean", mean)?,
        })
    }

    /// Exponential with the given rate `λ` (must be positive and finite).
    pub fn with_rate(rate: f64) -> Result<Exponential, DistError> {
        let rate = require_positive("exponential rate", rate)?;
        Ok(Exponential { mean: 1.0 / rate })
    }

    /// The rate `λ = 1/mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }

    /// Analytic variance `mean²` (CV² = 1).
    pub fn variance(&self) -> f64 {
        self.mean * self.mean
    }
}

impl Exponential {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: -mean · ln(1 - U), with U ∈ [0, 1).
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

impl Dist for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Erlang-k distribution: the sum of `k` i.i.d. exponentials.
///
/// The total execution time of a serial global task with `m` subtasks is
/// m-stage Erlang with mean `m/μ_subtask` (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Erlang {
    stages: u32,
    stage_mean: f64,
}

impl Erlang {
    /// Erlang with `stages ≥ 1` phases, each of mean `stage_mean`.
    pub fn new(stages: u32, stage_mean: f64) -> Result<Erlang, DistError> {
        if stages == 0 {
            return Err(DistError::NonPositive {
                what: "erlang stages",
                value: 0.0,
            });
        }
        Ok(Erlang {
            stages,
            stage_mean: require_positive("erlang stage mean", stage_mean)?,
        })
    }

    /// Number of phases.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Analytic variance `stages · stage_mean²` (CV² = 1/stages).
    pub fn variance(&self) -> f64 {
        f64::from(self.stages) * self.stage_mean * self.stage_mean
    }
}

impl Erlang {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Product-of-uniforms trick: Σ Exp(m) = -m · ln(Π Uᵢ).
        let mut prod: f64 = 1.0;
        for _ in 0..self.stages {
            let u: f64 = rng.gen();
            prod *= 1.0 - u;
        }
        -self.stage_mean * prod.ln()
    }
}

impl Dist for Erlang {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        f64::from(self.stages) * self.stage_mean
    }
}

/// Two-phase hyperexponential: with probability `p` draw from an
/// exponential of mean `mean1`, else of mean `mean2`.
///
/// Used in sensitivity studies for high-variance service times
/// (CV² > 1, unlike the exponential's CV² = 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyper2 {
    p: f64,
    mean1: f64,
    mean2: f64,
}

impl Hyper2 {
    /// Mixture `p·Exp(mean1) + (1-p)·Exp(mean2)`, `p ∈ [0, 1]`.
    pub fn new(p: f64, mean1: f64, mean2: f64) -> Result<Hyper2, DistError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(DistError::BadWeights);
        }
        Ok(Hyper2 {
            p,
            mean1: require_positive("hyper2 mean1", mean1)?,
            mean2: require_positive("hyper2 mean2", mean2)?,
        })
    }

    /// Analytic variance: `E[X²] = 2(p·mean1² + (1−p)·mean2²)` for the
    /// exponential mixture, minus the squared mean.
    pub fn variance(&self) -> f64 {
        let ex2 =
            2.0 * (self.p * self.mean1 * self.mean1 + (1.0 - self.p) * self.mean2 * self.mean2);
        let m = self.p * self.mean1 + (1.0 - self.p) * self.mean2;
        ex2 - m * m
    }
}

impl Hyper2 {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let coin: f64 = rng.gen();
        let mean = if coin < self.p {
            self.mean1
        } else {
            self.mean2
        };
        let u: f64 = rng.gen();
        -mean * (1.0 - u).ln()
    }
}

impl Dist for Hyper2 {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.p * self.mean1 + (1.0 - self.p) * self.mean2
    }
}

/// Lognormal distribution parameterized by its *actual* mean and
/// squared coefficient of variation (CV² = Var/mean²).
///
/// Used for moderately heavy-tailed service times in sensitivity
/// studies. Internally `exp(μ + σZ)` with `σ² = ln(1 + CV²)` and
/// `μ = ln(mean) − σ²/2`, sampled via Box-Muller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mean: f64,
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Lognormal with the given mean (> 0) and CV² (> 0).
    pub fn with_mean_cv2(mean: f64, cv2: f64) -> Result<LogNormal, DistError> {
        let mean = require_positive("lognormal mean", mean)?;
        let cv2 = require_positive("lognormal cv²", cv2)?;
        let sigma2 = (1.0 + cv2).ln();
        Ok(LogNormal {
            mean,
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        })
    }

    /// The squared coefficient of variation.
    pub fn cv2(&self) -> f64 {
        (self.sigma * self.sigma).exp_m1()
    }

    /// Analytic variance `mean² · CV²`.
    pub fn variance(&self) -> f64 {
        self.mean * self.mean * self.cv2()
    }
}

impl LogNormal {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u1 nudged away from 0 to keep ln() finite.
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

impl Dist for LogNormal {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Pareto (Lomax / shifted-Pareto) distribution with the given mean and
/// tail index `alpha > 1` — genuinely heavy-tailed service times
/// (infinite variance for `alpha ≤ 2`).
///
/// Density `f(x) = α·x_m^α / x^(α+1)` for `x ≥ x_m`, with
/// `x_m = mean·(α−1)/α` so the mean comes out as requested.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Pareto with the given mean (> 0) and tail index `alpha > 1`.
    pub fn with_mean(mean: f64, alpha: f64) -> Result<Pareto, DistError> {
        let mean = require_positive("pareto mean", mean)?;
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(DistError::NonPositive {
                what: "pareto tail index − 1",
                value: alpha - 1.0,
            });
        }
        Ok(Pareto {
            xm: mean * (alpha - 1.0) / alpha,
            alpha,
        })
    }

    /// The tail index α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Analytic variance `x_m² α / ((α−1)²(α−2))`; infinite for
    /// `α ≤ 2` (the heavy-tailed regime).
    pub fn variance(&self) -> f64 {
        if self.alpha > 2.0 {
            let a1 = self.alpha - 1.0;
            self.xm * self.xm * self.alpha / (a1 * a1 * (self.alpha - 2.0))
        } else {
            f64::INFINITY
        }
    }
}

impl Pareto {
    /// Draws one variate from any RNG without trait-object indirection.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - 1e-16);
        self.xm / (1.0 - u).powf(1.0 / self.alpha)
    }
}

impl Dist for Pareto {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        self.xm * self.alpha / (self.alpha - 1.0)
    }
}

/// A distribution shifted by a constant offset: `base + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shifted<D> {
    base: D,
    offset: f64,
}

impl<D: Dist> Shifted<D> {
    /// Shifts `base` by a finite `offset`.
    pub fn new(base: D, offset: f64) -> Result<Shifted<D>, DistError> {
        if offset.is_finite() {
            Ok(Shifted { base, offset })
        } else {
            Err(DistError::NonPositive {
                what: "shift offset",
                value: offset,
            })
        }
    }
}

impl<D: Dist> Dist for Shifted<D> {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.base.sample(rng) + self.offset
    }

    fn mean(&self) -> f64 {
        self.base.mean() + self.offset
    }
}

/// A closed sum of every in-tree distribution: the devirtualized
/// counterpart of `Box<dyn Dist>`.
///
/// Hot paths that draw millions of variates per run (service times,
/// interarrival gaps) hold a `Sampler` instead of a boxed trait object so
/// every draw is a direct, inlinable call — no vtable, no heap
/// allocation, no `&mut dyn RngCore` indirection. The sampling math is
/// shared with the concrete types (each variant delegates to its
/// `sample_with`), so the drawn sequence is bit-identical to the boxed
/// path.
///
/// ```
/// use sda_sim::dist::{DistSpec, Sampler};
/// use sda_sim::rng::RngFactory;
///
/// let s: Sampler = DistSpec::Exponential { mean: 2.0 }.build_sampler()?;
/// let mut rng = RngFactory::new(1).stream("svc");
/// assert!(s.sample_with(&mut rng) >= 0.0);
/// assert_eq!(s.mean(), 2.0);
/// # Ok::<(), sda_sim::dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Sampler {
    /// See [`Constant`].
    Constant(Constant),
    /// See [`Uniform`].
    Uniform(Uniform),
    /// See [`Exponential`].
    Exponential(Exponential),
    /// See [`Erlang`].
    Erlang(Erlang),
    /// See [`Hyper2`].
    Hyper2(Hyper2),
    /// See [`LogNormal`].
    LogNormal(LogNormal),
    /// See [`Pareto`].
    Pareto(Pareto),
}

impl Sampler {
    /// Draws one variate via a direct (devirtualized) call.
    #[inline]
    pub fn sample_with<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Sampler::Constant(d) => d.sample_with(rng),
            Sampler::Uniform(d) => d.sample_with(rng),
            Sampler::Exponential(d) => d.sample_with(rng),
            Sampler::Erlang(d) => d.sample_with(rng),
            Sampler::Hyper2(d) => d.sample_with(rng),
            Sampler::LogNormal(d) => d.sample_with(rng),
            Sampler::Pareto(d) => d.sample_with(rng),
        }
    }

    /// The analytic mean of the wrapped distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Sampler::Constant(d) => d.mean(),
            Sampler::Uniform(d) => d.mean(),
            Sampler::Exponential(d) => d.mean(),
            Sampler::Erlang(d) => d.mean(),
            Sampler::Hyper2(d) => d.mean(),
            Sampler::LogNormal(d) => d.mean(),
            Sampler::Pareto(d) => d.mean(),
        }
    }

    /// The analytic variance of the wrapped distribution
    /// (`f64::INFINITY` for Pareto with `α ≤ 2`).
    pub fn variance(&self) -> f64 {
        match self {
            Sampler::Constant(d) => d.variance(),
            Sampler::Uniform(d) => d.variance(),
            Sampler::Exponential(d) => d.variance(),
            Sampler::Erlang(d) => d.variance(),
            Sampler::Hyper2(d) => d.variance(),
            Sampler::LogNormal(d) => d.variance(),
            Sampler::Pareto(d) => d.variance(),
        }
    }

    /// The analytic second moment `E[X²] = Var + mean²`.
    pub fn second_moment(&self) -> f64 {
        let m = self.mean();
        self.variance() + m * m
    }

    /// The squared coefficient of variation `Var / mean²`; zero when
    /// the mean is zero (only a degenerate `Constant(0)`).
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }
}

impl Dist for Sampler {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_with(rng)
    }

    fn mean(&self) -> f64 {
        Sampler::mean(self)
    }
}

/// A serializable, cloneable description of a distribution, resolvable to
/// a sampler. This is what configuration files carry.
///
/// ```
/// use sda_sim::dist::{Dist, DistSpec};
/// let spec = DistSpec::Exponential { mean: 1.0 };
/// let d = spec.build()?;
/// assert_eq!(d.mean(), 1.0);
/// # Ok::<(), sda_sim::dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// See [`Constant`].
    Constant {
        /// The constant value.
        value: f64,
    },
    /// See [`Uniform`].
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// See [`Exponential`].
    Exponential {
        /// Mean (`1/λ`).
        mean: f64,
    },
    /// See [`Erlang`].
    Erlang {
        /// Number of phases.
        stages: u32,
        /// Mean of each phase.
        stage_mean: f64,
    },
    /// See [`Hyper2`].
    Hyper2 {
        /// Probability of the first phase.
        p: f64,
        /// Mean of the first phase.
        mean1: f64,
        /// Mean of the second phase.
        mean2: f64,
    },
    /// See [`LogNormal`].
    LogNormal {
        /// The distribution mean.
        mean: f64,
        /// Squared coefficient of variation.
        cv2: f64,
    },
    /// See [`Pareto`].
    Pareto {
        /// The distribution mean.
        mean: f64,
        /// Tail index (> 1).
        alpha: f64,
    },
}

impl DistSpec {
    /// Builds a boxed sampler from the description.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if the parameters are invalid, with the same
    /// rules as the concrete constructors.
    pub fn build(&self) -> Result<Box<dyn Dist + Send + Sync>, DistError> {
        Ok(Box::new(self.build_sampler()?))
    }

    /// Builds the devirtualized [`Sampler`] from the description — the
    /// allocation-free counterpart of [`DistSpec::build`].
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if the parameters are invalid, with the same
    /// rules as the concrete constructors.
    pub fn build_sampler(&self) -> Result<Sampler, DistError> {
        Ok(match *self {
            DistSpec::Constant { value } => Sampler::Constant(Constant::new(value)?),
            DistSpec::Uniform { lo, hi } => Sampler::Uniform(Uniform::new(lo, hi)?),
            DistSpec::Exponential { mean } => Sampler::Exponential(Exponential::with_mean(mean)?),
            DistSpec::Erlang { stages, stage_mean } => {
                Sampler::Erlang(Erlang::new(stages, stage_mean)?)
            }
            DistSpec::Hyper2 { p, mean1, mean2 } => Sampler::Hyper2(Hyper2::new(p, mean1, mean2)?),
            DistSpec::LogNormal { mean, cv2 } => {
                Sampler::LogNormal(LogNormal::with_mean_cv2(mean, cv2)?)
            }
            DistSpec::Pareto { mean, alpha } => Sampler::Pareto(Pareto::with_mean(mean, alpha)?),
        })
    }

    /// Analytic mean of the described distribution, if the parameters are
    /// valid.
    pub fn mean(&self) -> Result<f64, DistError> {
        Ok(self.build_sampler()?.mean())
    }

    /// Analytic variance of the described distribution, if the
    /// parameters are valid (`f64::INFINITY` for Pareto with `α ≤ 2`).
    pub fn variance(&self) -> Result<f64, DistError> {
        Ok(self.build_sampler()?.variance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> crate::rng::Stream {
        RngFactory::new(2024).stream("dist-tests")
    }

    fn sample_mean(d: &dyn Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_returns_value() {
        let c = Constant::new(3.5).unwrap();
        let mut r = rng();
        assert_eq!(c.sample(&mut r), 3.5);
        assert_eq!(c.mean(), 3.5);
        assert!(Constant::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(0.25, 2.5).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let x = u.sample(&mut r);
            assert!((0.25..=2.5).contains(&x));
        }
        assert!((sample_mean(&u, 100_000) - 1.375).abs() < 0.01);
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 1.0).is_err());
    }

    #[test]
    fn uniform_scaled() {
        let u = Uniform::new(0.25, 2.5).unwrap().scaled(4.0).unwrap();
        assert_eq!(u.lo(), 1.0);
        assert_eq!(u.hi(), 10.0);
        assert!(Uniform::new(0.0, 1.0).unwrap().scaled(-1.0).is_err());
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let e = Exponential::with_mean(2.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(e.sample(&mut r) >= 0.0);
        }
        assert!((sample_mean(&e, 200_000) - 2.0).abs() < 0.05);
        assert_eq!(e.rate(), 0.5);
        assert!(Exponential::with_mean(0.0).is_err());
        assert!(Exponential::with_rate(-1.0).is_err());
    }

    #[test]
    fn exponential_with_rate_matches_mean() {
        let e = Exponential::with_rate(4.0).unwrap();
        assert_eq!(e.mean(), 0.25);
    }

    #[test]
    fn erlang_mean_and_shape() {
        let e = Erlang::new(4, 1.0).unwrap();
        assert_eq!(e.mean(), 4.0);
        assert!((sample_mean(&e, 100_000) - 4.0).abs() < 0.1);
        // Erlang-4 has CV² = 1/4; check the variance is clearly below the
        // exponential's (which would be mean² = 16).
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| e.sample(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(
            (var - 4.0).abs() < 0.3,
            "Erlang-4(1) variance ≈ 4, got {var}"
        );
        assert!(Erlang::new(0, 1.0).is_err());
    }

    #[test]
    fn hyper2_mean() {
        let h = Hyper2::new(0.3, 1.0, 5.0).unwrap();
        assert!((h.mean() - 3.8).abs() < 1e-12);
        assert!((sample_mean(&h, 300_000) - 3.8).abs() < 0.1);
        assert!(Hyper2::new(1.5, 1.0, 1.0).is_err());
    }

    #[test]
    fn shifted_adds_offset() {
        let s = Shifted::new(Constant::new(1.0).unwrap(), 2.0).unwrap();
        let mut r = rng();
        assert_eq!(s.sample(&mut r), 3.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn spec_builds_and_reports_mean() {
        let specs = [
            DistSpec::Constant { value: 1.0 },
            DistSpec::Uniform { lo: 0.0, hi: 2.0 },
            DistSpec::Exponential { mean: 1.5 },
            DistSpec::Erlang {
                stages: 3,
                stage_mean: 2.0,
            },
            DistSpec::Hyper2 {
                p: 0.5,
                mean1: 1.0,
                mean2: 2.0,
            },
        ];
        let means = [1.0, 1.0, 1.5, 6.0, 1.5];
        for (spec, want) in specs.iter().zip(means) {
            assert!((spec.mean().unwrap() - want).abs() < 1e-12);
        }
        assert!(DistSpec::Exponential { mean: -1.0 }.build().is_err());
    }

    #[test]
    fn lognormal_mean_and_cv2() {
        let ln = LogNormal::with_mean_cv2(2.0, 4.0).unwrap();
        assert_eq!(ln.mean(), 2.0);
        assert!((ln.cv2() - 4.0).abs() < 1e-9);
        let m = sample_mean(&ln, 400_000);
        assert!((m - 2.0).abs() < 0.1, "lognormal sample mean {m}");
        let mut r = rng();
        for _ in 0..1000 {
            assert!(ln.sample(&mut r) > 0.0);
        }
        assert!(LogNormal::with_mean_cv2(0.0, 1.0).is_err());
        assert!(LogNormal::with_mean_cv2(1.0, -1.0).is_err());
    }

    #[test]
    fn pareto_mean_and_tail() {
        let p = Pareto::with_mean(1.0, 2.5).unwrap();
        assert!((p.mean() - 1.0).abs() < 1e-12);
        assert_eq!(p.alpha(), 2.5);
        let m = sample_mean(&p, 400_000);
        assert!((m - 1.0).abs() < 0.05, "pareto sample mean {m}");
        // Support starts at x_m = 1·1.5/2.5 = 0.6.
        let mut r = rng();
        for _ in 0..1000 {
            assert!(p.sample(&mut r) >= 0.6 - 1e-12);
        }
        assert!(Pareto::with_mean(1.0, 1.0).is_err());
        assert!(Pareto::with_mean(-1.0, 3.0).is_err());
    }

    #[test]
    fn new_specs_build() {
        assert!(
            (DistSpec::LogNormal {
                mean: 1.0,
                cv2: 2.0
            }
            .mean()
            .unwrap()
                - 1.0)
                .abs()
                < 1e-12
        );
        assert!(
            (DistSpec::Pareto {
                mean: 3.0,
                alpha: 2.0
            }
            .mean()
            .unwrap()
                - 3.0)
                .abs()
                < 1e-12
        );
        assert!(DistSpec::Pareto {
            mean: 3.0,
            alpha: 0.5
        }
        .build()
        .is_err());
    }

    #[test]
    fn sampler_enum_matches_boxed_draw_sequence_bit_exactly() {
        let specs = [
            DistSpec::Constant { value: 1.5 },
            DistSpec::Uniform { lo: 0.25, hi: 2.5 },
            DistSpec::Exponential { mean: 1.0 },
            DistSpec::Erlang {
                stages: 3,
                stage_mean: 0.5,
            },
            DistSpec::Hyper2 {
                p: 0.3,
                mean1: 1.0,
                mean2: 5.0,
            },
            DistSpec::LogNormal {
                mean: 2.0,
                cv2: 4.0,
            },
            DistSpec::Pareto {
                mean: 1.0,
                alpha: 2.5,
            },
        ];
        for spec in specs {
            let boxed = spec.build().unwrap();
            let direct = spec.build_sampler().unwrap();
            let mut r1 = rng();
            let mut r2 = rng();
            for _ in 0..1000 {
                let a = boxed.sample(&mut r1);
                let b = direct.sample_with(&mut r2);
                assert_eq!(a.to_bits(), b.to_bits(), "{spec:?}");
            }
            assert_eq!(boxed.mean().to_bits(), direct.mean().to_bits());
        }
    }

    #[test]
    fn errors_display_nonempty() {
        let e = Uniform::new(2.0, 1.0).unwrap_err();
        assert!(!e.to_string().is_empty());
        let e = Exponential::with_mean(0.0).unwrap_err();
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn variances_match_closed_forms() {
        // Exact values per distribution.
        assert_eq!(Constant::new(3.5).unwrap().variance(), 0.0);
        let u = Uniform::new(1.0, 4.0).unwrap();
        assert!((u.variance() - 0.75).abs() < 1e-15);
        let e = Exponential::with_mean(2.0).unwrap();
        assert!((e.variance() - 4.0).abs() < 1e-15);
        // Erlang-4 with stage mean 0.5: var = 4 · 0.25 = 1.
        let k = Erlang::new(4, 0.5).unwrap();
        assert!((k.variance() - 1.0).abs() < 1e-15);
        // Hyper2 degenerating to a single exponential: var = mean².
        let h = Hyper2::new(1.0, 2.0, 5.0).unwrap();
        assert!((h.variance() - 4.0).abs() < 1e-12);
        // LogNormal: var = mean²·cv2 by construction.
        let l = LogNormal::with_mean_cv2(2.0, 3.0).unwrap();
        assert!((l.variance() - 12.0).abs() < 1e-9);
        // Pareto α ≤ 2 has infinite variance, α > 2 the closed form.
        assert!(Pareto::with_mean(1.0, 1.5)
            .unwrap()
            .variance()
            .is_infinite());
        let p = Pareto::with_mean(1.0, 3.0).unwrap();
        // xm = 2/3: var = xm²·3/(4·1) = 1/3.
        assert!((p.variance() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_moments_agree_with_sampled_moments() {
        // Monte-Carlo check that the analytic variance describes what
        // the sampler actually draws (finite-variance variants only).
        let specs = [
            DistSpec::Uniform { lo: 0.25, hi: 2.5 },
            DistSpec::Exponential { mean: 1.0 },
            DistSpec::Erlang {
                stages: 4,
                stage_mean: 0.25,
            },
            DistSpec::Hyper2 {
                p: 0.3,
                mean1: 0.5,
                mean2: 2.0,
            },
            DistSpec::LogNormal {
                mean: 1.0,
                cv2: 0.8,
            },
            // α = 6 keeps the 4th moment finite so the sample variance
            // converges at Monte-Carlo rate.
            DistSpec::Pareto {
                mean: 1.0,
                alpha: 6.0,
            },
        ];
        for spec in specs {
            let s = spec.build_sampler().unwrap();
            let mut r = rng();
            let n = 400_000;
            let mut sum = 0.0;
            let mut sum2 = 0.0;
            for _ in 0..n {
                let x = s.sample_with(&mut r);
                sum += x;
                sum2 += x * x;
            }
            let m = sum / n as f64;
            let v = sum2 / n as f64 - m * m;
            let tol = 0.1 * s.variance().max(0.1);
            assert!(
                (v - s.variance()).abs() < tol,
                "{spec:?}: sampled var {v} vs analytic {}",
                s.variance()
            );
            assert!((s.second_moment() - (s.variance() + s.mean() * s.mean())).abs() < 1e-12);
            assert_eq!(spec.variance().unwrap(), s.variance());
        }
        // SCV accessor: exponential is 1, Erlang-4 is 1/4, constants 0.
        let exp = DistSpec::Exponential { mean: 3.0 }.build_sampler().unwrap();
        assert!((exp.scv() - 1.0).abs() < 1e-15);
        let erl = DistSpec::Erlang {
            stages: 4,
            stage_mean: 1.0,
        }
        .build_sampler()
        .unwrap();
        assert!((erl.scv() - 0.25).abs() < 1e-15);
        let zero = DistSpec::Constant { value: 0.0 }.build_sampler().unwrap();
        assert_eq!(zero.scv(), 0.0);
    }
}
