//! # sda-sim — deterministic discrete-event simulation engine
//!
//! This crate is the simulation substrate for the reproduction of Kao &
//! Garcia-Molina, *Deadline Assignment in a Distributed Soft Real-Time
//! System* (ICDCS '93). The paper's experiments were written in the DeNet
//! simulation language; this crate provides the equivalent machinery as a
//! library:
//!
//! * [`SimTime`] — a totally-ordered simulation clock value,
//! * [`EventQueue`] — a slab-backed future-event list with deterministic
//!   FIFO tie-breaking, O(1) generation-stamped cancellation and a
//!   handle-free fast path for never-cancelled events,
//! * [`pq`] — the packed-key 4-ary heap both it and the schedulers'
//!   ready queues sit on,
//! * [`Engine`] / [`Simulation`] — the event loop and the model trait,
//! * [`rng`] — seedable, named, independent random-number streams
//!   (xoshiro256\*\* seeded via SplitMix64),
//! * [`dist`] — the distributions used by the paper's workload model
//!   (exponential, uniform, Erlang, …) with validated constructors,
//! * [`stats`] — Welford tallies, time-weighted integrals, histograms and
//!   confidence intervals for replicated experiments.
//!
//! The engine is single-threaded and fully deterministic: running the same
//! model with the same seed produces the same event trace, which the paper's
//! DeNet setup did not guarantee.
//!
//! ## Example
//!
//! A single-server queue in a few lines (the `handle` callback receives the
//! model's own event type):
//!
//! ```
//! use sda_sim::{Engine, Simulation, Context, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! #[derive(Default)]
//! struct Queue { in_system: u32, served: u32 }
//!
//! impl Simulation for Queue {
//!     type Event = Ev;
//!     fn handle(&mut self, ctx: &mut Context<Ev>, ev: Ev) {
//!         match ev {
//!             Ev::Arrival => {
//!                 self.in_system += 1;
//!                 if self.in_system == 1 {
//!                     ctx.schedule_in(1.0, Ev::Departure);
//!                 }
//!                 if ctx.now() < SimTime::from(10.0) {
//!                     ctx.schedule_in(2.0, Ev::Arrival);
//!                 }
//!             }
//!             Ev::Departure => {
//!                 self.in_system -= 1;
//!                 self.served += 1;
//!                 if self.in_system > 0 {
//!                     ctx.schedule_in(1.0, Ev::Departure);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Queue::default());
//! engine.context_mut().schedule_at(SimTime::ZERO, Ev::Arrival);
//! engine.run();
//! assert!(engine.model().served > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod event;
mod time;

pub mod dist;
pub mod mailbox;
pub mod pq;
pub mod rng;
pub mod stats;

pub use engine::{Context, Engine, RunReport, Simulation, StopReason};
pub use event::{EventHandle, EventQueue, ScheduledEvent};
pub use time::SimTime;
