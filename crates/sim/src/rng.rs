//! Deterministic, named random-number streams.
//!
//! Simulation studies need *independent* random streams per stochastic
//! component (arrivals, service times, slack draws, node choices, …) so
//! that changing one component's consumption pattern does not perturb the
//! others — the classic "common random numbers" variance-reduction setup.
//! DeNet provided this via numbered streams; here streams are *named*:
//!
//! ```
//! use sda_sim::rng::RngFactory;
//! use rand::Rng;
//!
//! let factory = RngFactory::new(42);
//! let mut arrivals = factory.stream("arrivals.global");
//! let mut service = factory.stream("service.node0");
//! let a: f64 = arrivals.gen();
//! let s: f64 = service.gen();
//! assert_ne!(a, s);
//!
//! // Streams are a pure function of (master seed, label):
//! let again: f64 = RngFactory::new(42).stream("arrivals.global").gen();
//! assert_eq!(a, again);
//! ```
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend. It is implemented here rather than
//! pulled from `rand_xoshiro` to keep the dependency set minimal and the
//! stream-derivation auditable; `rand`'s `StdRng` is documented as *not*
//! stable across versions, which would silently break reproducibility.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64: a tiny 64-bit PRNG used to expand seeds.
///
/// Passes through every 64-bit state exactly once; good enough for seeding
/// but not used directly for variates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workhorse generator behind every [`RngFactory`]
/// stream. 256 bits of state, period 2²⁵⁶ − 1, excellent statistical
/// quality for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the generator by expanding `seed` through SplitMix64, per the
    /// algorithm authors' recommendation.
    pub fn from_u64_seed(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Xoshiro256StarStar {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0, 0, 0, 0] {
            return Xoshiro256StarStar::from_u64_seed(0);
        }
        Xoshiro256StarStar { s }
    }

    fn seed_from_u64(state: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_u64_seed(state)
    }
}

/// The stream type handed out by [`RngFactory::stream`].
pub type Stream = Xoshiro256StarStar;

/// Derives independent, reproducible random streams from a master seed and
/// a string label. See the [module docs](self) for an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl RngFactory {
    /// Creates a factory rooted at `master_seed`.
    pub fn new(master_seed: u64) -> RngFactory {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the generator for stream `label`. The result depends only on
    /// `(master_seed, label)`, never on the order or number of other
    /// streams created.
    pub fn stream(&self, label: &str) -> Stream {
        // Mix the label hash and master seed through SplitMix64 twice so
        // structurally similar labels ("node.1"/"node.2") land far apart.
        let mut sm = SplitMix64::new(self.master_seed ^ fnv1a(label.as_bytes()));
        let _ = sm.next_u64();
        let derived = sm.next_u64();
        Xoshiro256StarStar::from_u64_seed(derived)
    }

    /// Convenience for per-entity streams: `stream_indexed("service", 3)`
    /// is `stream("service.3")` without the allocation in the caller.
    pub fn stream_indexed(&self, label: &str, index: usize) -> Stream {
        // sda-lint: allow(stream-registry, reason = "the one dynamic call site: this method IS the indexed-family mechanism the registry models")
        self.stream(&format!("{label}.{index}"))
    }

    /// Derives a sub-factory, e.g. one per replication. Sub-factories with
    /// different indices produce unrelated streams for the same labels.
    pub fn subfactory(&self, index: u64) -> RngFactory {
        let mut sm = SplitMix64::new(self.master_seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        let _ = sm.next_u64();
        RngFactory {
            master_seed: sm.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: seeding xoshiro256** with state {1,2,3,4} must produce
        // the sequence published with the algorithm.
        let mut rng = Xoshiro256StarStar { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 with seed 0 (widely published).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let f = RngFactory::new(7);
        let mut a1 = f.stream("a");
        let mut a2 = f.stream("a");
        let mut b = f.stream("b");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn different_master_seeds_differ() {
        let mut a = RngFactory::new(1).stream("s");
        let mut b = RngFactory::new(2).stream("s");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn subfactories_are_independent() {
        let f = RngFactory::new(99);
        let mut r0 = f.subfactory(0).stream("x");
        let mut r1 = f.subfactory(1).stream("x");
        assert_ne!(r0.next_u64(), r1.next_u64());
        // Deterministic too.
        let mut r0b = RngFactory::new(99).subfactory(0).stream("x");
        let mut r0c = f.subfactory(0).stream("x");
        assert_eq!(r0c.next_u64(), r0b.next_u64());
    }

    #[test]
    fn stream_indexed_matches_manual_label() {
        let f = RngFactory::new(5);
        let mut a = f.stream_indexed("node", 3);
        let mut b = f.stream("node.3");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = Xoshiro256StarStar::from_u64_seed(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn uniform_floats_are_in_unit_interval() {
        let mut rng = RngFactory::new(3).stream("u");
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn mean_of_uniform_is_about_half() {
        let mut rng = RngFactory::new(11).stream("mean");
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_state_guarded() {
        let mut z = Xoshiro256StarStar::from_seed([0u8; 32]);
        // Must not be stuck at zero.
        assert_ne!(z.next_u64() | z.next_u64() | z.next_u64(), 0);
    }
}
