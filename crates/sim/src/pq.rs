//! A 4-ary min-heap over packed `u128` keys — the priority-queue
//! primitive under both the future-event list and the schedulers'
//! ready queues.
//!
//! Two properties make it faster than `BinaryHeap<Reverse<T>>` for
//! simulation workloads:
//!
//! * **one integer compare per step** — the composite ordering key
//!   (time/priority, then insertion sequence) is pre-packed into a single
//!   `u128` via the order-preserving float-bits mapping of
//!   [`key_from_f64`], instead of a chained `Ord` implementation
//!   branching through two or three fields;
//! * **4-ary layout** — half the tree depth of a binary heap, and the
//!   four children of a node share cache lines, so sift-downs touch
//!   fewer lines.
//!
//! Ties on the full 128-bit key pop in unspecified order; callers make
//! keys unique (and FIFO) by packing a sequence number into the low bits.

/// Maps an `f64` to a `u64` whose unsigned order equals
/// [`f64::total_cmp`] order. Invert with [`f64_from_key`].
#[inline]
pub fn key_from_f64(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        // Negative (or negative NaN): flip all bits so bigger magnitude
        // sorts smaller.
        !b
    } else {
        // Positive: set the top bit so positives sort above negatives.
        b | (1 << 63)
    }
}

/// Inverse of [`key_from_f64`].
#[inline]
pub fn f64_from_key(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// A 4-ary min-heap of `(u128 key, payload)` pairs.
#[derive(Debug, Clone)]
pub struct MinHeap<P> {
    entries: Vec<(u128, P)>,
}

impl<P> MinHeap<P> {
    /// An empty heap.
    pub fn new() -> MinHeap<P> {
        MinHeap {
            entries: Vec::new(),
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the heap is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The minimum entry, if any.
    #[inline]
    pub fn peek(&self) -> Option<(u128, &P)> {
        self.entries.first().map(|(k, p)| (*k, p))
    }

    /// Inserts an entry.
    pub fn push(&mut self, key: u128, payload: P) {
        self.entries.push((key, payload));
        self.sift_up(self.entries.len() - 1);
    }

    /// Removes and returns the minimum entry.
    pub fn pop(&mut self) -> Option<(u128, P)> {
        let last = self.entries.len().checked_sub(1)?;
        self.entries.swap(0, last);
        let out = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.entries[parent].0 <= self.entries[i].0 {
                break;
            }
            self.entries.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + 4).min(n);
            let mut min = first_child;
            let mut min_key = self.entries[first_child].0;
            for c in first_child + 1..last_child {
                let k = self.entries[c].0;
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if self.entries[i].0 <= min_key {
                break;
            }
            self.entries.swap(i, min);
            i = min;
        }
    }
}

impl<P> Default for MinHeap<P> {
    fn default() -> Self {
        MinHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_key_mapping_is_order_preserving_and_invertible() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            0.25,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                key_from_f64(w[0]) <= key_from_f64(w[1]),
                "order broken between {} and {}",
                w[0],
                w[1]
            );
        }
        for &v in &values {
            assert_eq!(f64_from_key(key_from_f64(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn pops_ascending_under_adversarial_input() {
        let mut h = MinHeap::new();
        // Pseudo-random insertion order via a small LCG.
        let mut x: u64 = 12345;
        let mut keys = Vec::new();
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.push(x);
            h.push(u128::from(x), x);
        }
        keys.sort_unstable();
        for expect in keys {
            let (k, p) = h.pop().unwrap();
            assert_eq!(k, u128::from(expect));
            assert_eq!(p, expect);
        }
        assert!(h.pop().is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_push_pop_maintains_invariant() {
        let mut h = MinHeap::new();
        let mut x: u64 = 7;
        let mut last_popped = 0u128;
        let mut pending = 0usize;
        for round in 0..5_000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            // Keys grow with round so pops never go backwards (as in a
            // simulation, where scheduling into the past is impossible).
            let key = u128::from(round) << 32 | u128::from(x & 0xFFFF_FFFF);
            h.push(key, ());
            pending += 1;
            if x.is_multiple_of(3) {
                let (k, ()) = h.pop().unwrap();
                assert!(k >= last_popped, "heap went backwards");
                last_popped = k;
                pending -= 1;
            }
        }
        assert_eq!(h.len(), pending);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = MinHeap::new();
        h.push(5, "five");
        h.push(1, "one");
        h.push(3, "three");
        assert_eq!(h.peek(), Some((1, &"one")));
        assert_eq!(h.pop(), Some((1, "one")));
        assert_eq!(h.peek(), Some((3, &"three")));
    }
}
