//! Confidence intervals.

use serde::{Deserialize, Serialize};

/// Two-sided 97.5% quantile of Student's t distribution with `df` degrees
/// of freedom — i.e. the multiplier for a 95% confidence interval.
///
/// Exact table values for df ≤ 30; the normal approximation (1.96) beyond.
/// `df = 0` returns infinity (no interval can be formed from one point).
///
/// ```
/// use sda_sim::stats::student_t_975;
/// assert!((student_t_975(1) - 12.706).abs() < 1e-3);
/// assert!((student_t_975(10) - 2.228).abs() < 1e-3);
/// assert!((student_t_975(1000) - 1.96).abs() < 1e-6);
/// ```
pub fn student_t_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.96,
    }
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub mean: f64,
    /// Half the interval width; the interval is `[mean − hw, mean + hw]`.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Builds a 95% CI for the mean of `n` i.i.d. observations with sample
    /// mean `mean` and sample standard deviation `std_dev`.
    pub fn from_moments(mean: f64, std_dev: f64, n: u64) -> ConfidenceInterval {
        if n < 2 {
            return ConfidenceInterval {
                mean,
                half_width: f64::INFINITY,
            };
        }
        let t = student_t_975(n - 1);
        ConfidenceInterval {
            mean,
            half_width: t * std_dev / (n as f64).sqrt(),
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Whether two intervals overlap (a quick, conservative test for
    /// "statistically indistinguishable").
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_checks() {
        assert!((student_t_975(2) - 4.303).abs() < 1e-9);
        assert!((student_t_975(30) - 2.042).abs() < 1e-9);
        assert_eq!(student_t_975(0), f64::INFINITY);
        assert_eq!(student_t_975(50), 2.000);
        assert_eq!(student_t_975(10_000), 1.96);
    }

    #[test]
    fn t_decreases_with_df() {
        let mut prev = student_t_975(1);
        for df in 2..200 {
            let t = student_t_975(df);
            assert!(t <= prev + 1e-12, "t({df}) = {t} > t({}) = {prev}", df - 1);
            prev = t;
        }
    }

    #[test]
    fn interval_endpoints_and_contains() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
    }

    #[test]
    fn from_moments_uses_t() {
        // n = 4 → df = 3 → t = 3.182; hw = 3.182 * 2 / 2 = 3.182.
        let ci = ConfidenceInterval::from_moments(5.0, 2.0, 4);
        assert!((ci.half_width - 3.182).abs() < 1e-9);
        let degenerate = ConfidenceInterval::from_moments(5.0, 2.0, 1);
        assert_eq!(degenerate.half_width, f64::INFINITY);
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
        };
        let b = ConfidenceInterval {
            mean: 1.5,
            half_width: 1.0,
        };
        let c = ConfidenceInterval {
            mean: 5.0,
            half_width: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_formats() {
        let ci = ConfidenceInterval {
            mean: 0.4,
            half_width: 0.0035,
        };
        assert_eq!(ci.to_string(), "0.4000 ± 0.0035");
    }
}
