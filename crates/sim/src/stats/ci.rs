//! Confidence intervals.

use serde::{Deserialize, Serialize};

/// Two-sided 97.5% quantile of Student's t distribution with `df` degrees
/// of freedom — i.e. the multiplier for a 95% confidence interval.
///
/// Exact table values (3 decimal places) for df ≤ 100; beyond that, a
/// `1/df` interpolation toward the normal quantile
/// (`1.96 + 2.4/df`, which reproduces the published t₀.₉₇₅ values at
/// df = 120 ≈ 1.980, df = 240 ≈ 1.970, and converges to 1.96). The old
/// coarse step table (2.021 for all of df 31–40, etc.) understated the
/// multiplier by up to ~1% right above 30 — e.g. t₀.₉₇₅(31) is 2.040,
/// not 2.021 — so replication CI half-widths were too narrow.
///
/// `df = 0` returns infinity (no interval can be formed from one point).
///
/// ```
/// use sda_sim::stats::student_t_975;
/// assert!((student_t_975(1) - 12.706).abs() < 1e-3);
/// assert!((student_t_975(10) - 2.228).abs() < 1e-3);
/// assert!((student_t_975(31) - 2.040).abs() < 1e-3);
/// assert!((student_t_975(120) - 1.980).abs() < 1e-3);
/// assert!((student_t_975(1000) - 1.962).abs() < 1e-3);
/// ```
pub fn student_t_975(df: u64) -> f64 {
    const TABLE: [f64; 100] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 1–10
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11–20
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21–30
        2.040, 2.037, 2.035, 2.032, 2.030, 2.028, 2.026, 2.024, 2.023, 2.021, // 31–40
        2.020, 2.018, 2.017, 2.015, 2.014, 2.013, 2.012, 2.011, 2.010, 2.009, // 41–50
        2.008, 2.007, 2.006, 2.005, 2.004, 2.003, 2.002, 2.002, 2.001, 2.000, // 51–60
        2.000, 1.999, 1.998, 1.998, 1.997, 1.997, 1.996, 1.995, 1.995, 1.994, // 61–70
        1.994, 1.993, 1.993, 1.993, 1.992, 1.992, 1.991, 1.991, 1.990, 1.990, // 71–80
        1.990, 1.989, 1.989, 1.989, 1.988, 1.988, 1.988, 1.987, 1.987, 1.987, // 81–90
        1.986, 1.986, 1.986, 1.986, 1.985, 1.985, 1.985, 1.984, 1.984, 1.984, // 91–100
    ];
    match df {
        0 => f64::INFINITY,
        1..=100 => TABLE[(df - 1) as usize],
        _ => 1.96 + 2.4 / df as f64,
    }
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub mean: f64,
    /// Half the interval width; the interval is `[mean − hw, mean + hw]`.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Builds a 95% CI for the mean of `n` i.i.d. observations with sample
    /// mean `mean` and sample standard deviation `std_dev`.
    pub fn from_moments(mean: f64, std_dev: f64, n: u64) -> ConfidenceInterval {
        if n < 2 {
            return ConfidenceInterval {
                mean,
                half_width: f64::INFINITY,
            };
        }
        let t = student_t_975(n - 1);
        ConfidenceInterval {
            mean,
            half_width: t * std_dev / (n as f64).sqrt(),
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Whether two intervals overlap (a quick, conservative test for
    /// "statistically indistinguishable").
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo() <= other.hi() && other.lo() <= self.hi()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_checks() {
        assert!((student_t_975(2) - 4.303).abs() < 1e-9);
        assert!((student_t_975(30) - 2.042).abs() < 1e-9);
        assert_eq!(student_t_975(0), f64::INFINITY);
        // Regression: df just above 30 used to collapse to 2.021.
        assert_eq!(student_t_975(31), 2.040);
        assert_eq!(student_t_975(40), 2.021);
        assert_eq!(student_t_975(50), 2.009);
        assert_eq!(student_t_975(60), 2.000);
        assert_eq!(student_t_975(100), 1.984);
        // Interpolated tail matches the published table to 3 decimals.
        assert!((student_t_975(120) - 1.980).abs() < 1e-3);
        assert!((student_t_975(10_000) - 1.960).abs() < 1e-3);
    }

    #[test]
    fn t_decreases_with_df_through_the_interpolated_tail() {
        let mut prev = student_t_975(1);
        for df in 2..2_000 {
            let t = student_t_975(df);
            assert!(t <= prev + 1e-12, "t({df}) = {t} > t({}) = {prev}", df - 1);
            assert!(t >= 1.96, "t({df}) = {t} below the normal quantile");
            prev = t;
        }
    }

    #[test]
    fn t_agrees_with_reference_values_above_30() {
        // Published t₀.₉₇₅ values (Student's t table, 4 decimals).
        for (df, expected) in [
            (31, 2.0395),
            (35, 2.0301),
            (45, 2.0141),
            (60, 2.0003),
            (80, 1.9901),
            (100, 1.9840),
            (120, 1.9799),
            (240, 1.9699),
        ] {
            let t = student_t_975(df);
            assert!(
                (t - expected).abs() < 2e-3,
                "t({df}) = {t}, reference {expected}"
            );
        }
    }

    #[test]
    fn interval_endpoints_and_contains() {
        let ci = ConfidenceInterval {
            mean: 10.0,
            half_width: 2.0,
        };
        assert_eq!(ci.lo(), 8.0);
        assert_eq!(ci.hi(), 12.0);
        assert!(ci.contains(9.0));
        assert!(!ci.contains(12.5));
    }

    #[test]
    fn from_moments_uses_t() {
        // n = 4 → df = 3 → t = 3.182; hw = 3.182 * 2 / 2 = 3.182.
        let ci = ConfidenceInterval::from_moments(5.0, 2.0, 4);
        assert!((ci.half_width - 3.182).abs() < 1e-9);
        let degenerate = ConfidenceInterval::from_moments(5.0, 2.0, 1);
        assert_eq!(degenerate.half_width, f64::INFINITY);
    }

    #[test]
    fn overlap_detection() {
        let a = ConfidenceInterval {
            mean: 0.0,
            half_width: 1.0,
        };
        let b = ConfidenceInterval {
            mean: 1.5,
            half_width: 1.0,
        };
        let c = ConfidenceInterval {
            mean: 5.0,
            half_width: 1.0,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display_formats() {
        let ci = ConfidenceInterval {
            mean: 0.4,
            half_width: 0.0035,
        };
        assert_eq!(ci.to_string(), "0.4000 ± 0.0035");
    }
}
