//! Across-replication output analysis.

use serde::{Deserialize, Serialize};

use super::ci::ConfidenceInterval;
use super::tally::Tally;

/// Collects one summary value per independent replication and reports the
/// across-replication mean with a 95% Student-t confidence interval.
///
/// The paper generates each data point from two independent runs; this
/// generalizes to any replication count (more replications → tighter,
/// better-calibrated intervals).
///
/// # Examples
///
/// ```
/// use sda_sim::stats::Replications;
///
/// let mut reps = Replications::new();
/// for miss_pct in [39.2, 40.6, 40.1, 39.9] {
///     reps.add(miss_pct);
/// }
/// let ci = reps.confidence_interval().unwrap();
/// assert!(ci.contains(40.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replications {
    values: Vec<f64>,
}

impl Replications {
    /// An empty collection.
    pub fn new() -> Replications {
        Replications { values: Vec::new() }
    }

    /// Records the summary value of one replication.
    pub fn add(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of replications recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// The recorded per-replication values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Across-replication mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.tally().mean()
    }

    /// Across-replication sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.tally().std_dev()
    }

    /// 95% confidence interval; `None` with fewer than two replications.
    pub fn confidence_interval(&self) -> Option<ConfidenceInterval> {
        if self.values.len() < 2 {
            return None;
        }
        let t = self.tally();
        Some(ConfidenceInterval::from_moments(
            t.mean(),
            t.std_dev(),
            t.count(),
        ))
    }

    fn tally(&self) -> Tally {
        self.values.iter().copied().collect()
    }
}

impl Default for Replications {
    fn default() -> Self {
        Replications::new()
    }
}

impl Extend<f64> for Replications {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Replications {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Replications {
        Replications {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut r = Replications::new();
        assert_eq!(r.mean(), 0.0);
        assert!(r.confidence_interval().is_none());
        r.add(5.0);
        assert_eq!(r.mean(), 5.0);
        assert!(r.confidence_interval().is_none());
    }

    #[test]
    fn two_reps_give_wide_interval() {
        let r: Replications = [10.0, 12.0].into_iter().collect();
        let ci = r.confidence_interval().unwrap();
        assert_eq!(ci.mean, 11.0);
        // df = 1 → t = 12.706; hw = 12.706 · sd/√2 = 12.706 · 1.4142/1.4142 ≈ 12.7
        assert!((ci.half_width - 12.706).abs() < 0.01);
    }

    #[test]
    fn many_reps_tighten_interval() {
        let wide: Replications = (0..2).map(|i| 10.0 + f64::from(i)).collect();
        let tight: Replications = (0..30).map(|i| 10.0 + f64::from(i % 2)).collect();
        let hw_wide = wide.confidence_interval().unwrap().half_width;
        let hw_tight = tight.confidence_interval().unwrap().half_width;
        assert!(hw_tight < hw_wide);
    }

    #[test]
    fn values_accessible() {
        let r: Replications = [1.0, 2.0].into_iter().collect();
        assert_eq!(r.values(), &[1.0, 2.0]);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn extreme_replication_values_never_produce_nan_intervals() {
        // Heavy-traffic (ρ → 1) runs can report enormous per-replication
        // response means; the across-replication interval must stay
        // NaN-free and its half-width nonnegative (via the Tally
        // variance clamp).
        let cases: [&[f64]; 4] = [
            &[1.0e12, 1.0e12, 1.0e12],
            &[1.0e300, 1.0e300],
            &[3.7, 1.0e15, 2.2, 8.0e14],
            &[0.0, 0.0, 0.0, 0.0],
        ];
        for vs in cases {
            let r: Replications = vs.iter().copied().collect();
            assert!(!r.mean().is_nan());
            assert!(!r.std_dev().is_nan(), "NaN std_dev for {vs:?}");
            let ci = r.confidence_interval().unwrap();
            assert!(!ci.mean.is_nan());
            assert!(
                !ci.half_width.is_nan() && ci.half_width >= 0.0,
                "bad half-width {} for {vs:?}",
                ci.half_width
            );
        }
    }
}
