//! Output statistics: tallies, time-weighted integrals, histograms,
//! confidence intervals and replication analysis.
//!
//! The paper reports missed-deadline percentages with 95% confidence
//! intervals (±0.35 percentage points at their run lengths) from two
//! independent runs per data point. This module provides the machinery to
//! do the same, generalized to any number of replications:
//!
//! * [`Tally`] — streaming mean/variance/min/max (Welford's algorithm),
//! * [`TimeWeighted`] — integrals of piecewise-constant signals
//!   (utilization, queue length),
//! * [`Histogram`] — fixed-width binning with quantile estimates
//!   (lateness/tardiness distributions),
//! * [`Ratio`] — numerator/denominator counters for miss ratios,
//! * [`Replications`] — across-run mean ± half-width at 95% confidence
//!   (Student t),
//! * [`BatchMeans`] — within-run CI via batch means, the method DeNet-era
//!   studies typically used.

mod batch;
mod ci;
mod histogram;
mod quantile;
mod ratio;
mod replication;
mod tally;
mod timeweighted;

pub use batch::BatchMeans;
pub use ci::{student_t_975, ConfidenceInterval};
pub use histogram::{Histogram, HistogramError};
pub use quantile::{P2Quantile, QuantileError};
pub use ratio::Ratio;
pub use replication::Replications;
pub use tally::Tally;
pub use timeweighted::TimeWeighted;
