//! Streaming sample statistics.

use serde::{Deserialize, Serialize};

/// A streaming tally of observations: count, mean, variance (Welford's
/// numerically stable one-pass algorithm), min, max and sum.
///
/// # Examples
///
/// ```
/// use sda_sim::stats::Tally;
///
/// let mut t = Tally::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     t.add(x);
/// }
/// assert_eq!(t.count(), 4);
/// assert_eq!(t.mean(), 2.5);
/// assert!((t.variance() - 5.0 / 3.0).abs() < 1e-12);
/// assert_eq!(t.min(), 1.0);
/// assert_eq!(t.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Tally {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another tally into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator); `0.0` for fewer than
    /// two observations.
    ///
    /// Clamped at zero: Welford's `m2` is nonnegative in exact
    /// arithmetic, but catastrophic cancellation on extreme-magnitude
    /// streams (heavy-traffic sojourn outliers near ρ → 1) can drive it
    /// to a tiny negative, which would surface as NaN from
    /// [`std_dev`](Tally::std_dev).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

impl Default for Tally {
    fn default() -> Self {
        Tally::new()
    }
}

impl Extend<f64> for Tally {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Tally {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Tally {
        let mut t = Tally::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tally_is_sane() {
        let t = Tally::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let t: Tally = [7.0].into_iter().collect();
        assert_eq!(t.mean(), 7.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), 7.0);
        assert_eq!(t.max(), 7.0);
    }

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let t: Tally = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((t.mean() - mean).abs() < 1e-10);
        assert!((t.variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let (a, b) = xs.split_at(123);
        let mut ta: Tally = a.iter().copied().collect();
        let tb: Tally = b.iter().copied().collect();
        let tall: Tally = xs.iter().copied().collect();
        ta.merge(&tb);
        assert_eq!(ta.count(), tall.count());
        assert!((ta.mean() - tall.mean()).abs() < 1e-12);
        assert!((ta.variance() - tall.variance()).abs() < 1e-10);
        assert_eq!(ta.min(), tall.min());
        assert_eq!(ta.max(), tall.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut t: Tally = [1.0, 2.0].into_iter().collect();
        let before = t;
        t.merge(&Tally::new());
        assert_eq!(t, before);
        let mut e = Tally::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn numerical_stability_with_large_offsets() {
        // Welford should not lose the variance of small deviations around a
        // huge mean.
        let t: Tally = (0..1000).map(|i| 1.0e9 + f64::from(i % 2)).collect();
        assert!((t.variance() - 0.2503).abs() < 0.01, "var={}", t.variance());
    }

    #[test]
    fn extreme_value_streams_never_yield_nan_or_negative_variance() {
        // Heavy-traffic sojourn streams mix moderate values with huge
        // outliers across many orders of magnitude; the variance must
        // stay finite-or-infinite and nonnegative, never NaN.
        let streams: [&[f64]; 4] = [
            &[1.0, 1.0e12, 2.0, 3.0e15, 4.0],
            &[1.0e300, 1.0e300, 1.0e300],
            &[5.0e-320, 1.0e-300, 2.0e-310],
            &[0.0, 1.0e-30, 1.0e30, 7.3],
        ];
        for xs in streams {
            let t: Tally = xs.iter().copied().collect();
            assert!(!t.variance().is_nan(), "NaN variance for {xs:?}");
            assert!(t.variance() >= 0.0, "negative variance for {xs:?}");
            assert!(!t.std_dev().is_nan(), "NaN std_dev for {xs:?}");
            assert!(!t.std_error().is_nan(), "NaN std_error for {xs:?}");
        }
    }

    #[test]
    fn identical_huge_observations_have_zero_variance() {
        // The catastrophic-cancellation case the clamp guards: identical
        // huge values can leave m2 a tiny negative in floating point.
        for &v in &[1.0e15, 1.0e100, 1.0e300, 9.007199254740993e15] {
            let t: Tally = std::iter::repeat_n(v, 1000).collect();
            assert!(t.variance() >= 0.0, "negative variance at {v}");
            assert!(!t.std_dev().is_nan(), "NaN std_dev at {v}");
        }
    }

    #[test]
    fn merging_huge_offset_tallies_stays_nonnegative() {
        // Merging partitions whose means differ by many orders of
        // magnitude exercises the delta²·n1·n2/total term.
        let a: Tally = (0..100).map(|i| 1.0e12 + f64::from(i)).collect();
        let b: Tally = (0..100).map(|i| f64::from(i) * 1.0e-6).collect();
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.count(), 200);
        assert!(m.variance() >= 0.0);
        assert!(!m.variance().is_nan());
        assert!(!m.std_dev().is_nan());
        // Also merge two identical-huge-value tallies.
        let c: Tally = std::iter::repeat_n(1.0e300, 50).collect();
        let mut d: Tally = std::iter::repeat_n(1.0e300, 50).collect();
        d.merge(&c);
        assert!(d.variance() >= 0.0);
        assert!(!d.std_dev().is_nan());
    }
}
