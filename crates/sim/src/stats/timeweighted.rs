//! Time-weighted statistics for piecewise-constant signals.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Integrates a piecewise-constant signal over simulation time, yielding
/// its time average — used for server utilization and queue lengths.
///
/// Call [`TimeWeighted::update`] *before* changing the signal's value; the
/// old value is integrated up to the given instant.
///
/// # Examples
///
/// ```
/// use sda_sim::stats::TimeWeighted;
/// use sda_sim::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.update(SimTime::from(4.0), 1.0);  // signal was 0.0 on [0, 4)
/// u.update(SimTime::from(10.0), 0.0); // signal was 1.0 on [4, 10)
/// assert_eq!(u.time_average(SimTime::from(10.0)), 0.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_update: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts tracking at time `start` with the signal at `initial`.
    pub fn new(start: SimTime, initial: f64) -> TimeWeighted {
        TimeWeighted {
            start,
            last_update: start,
            value: initial,
            integral: 0.0,
            peak: initial,
        }
    }

    /// Integrates the current value up to `now`, then switches the signal
    /// to `new_value`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (in debug builds).
    pub fn update(&mut self, now: SimTime, new_value: f64) {
        debug_assert!(now >= self.last_update, "time went backwards");
        self.integral += self.value * (now - self.last_update);
        self.last_update = now;
        self.value = new_value;
        if new_value > self.peak {
            self.peak = new_value;
        }
    }

    /// The current signal value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest value the signal has taken.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The integral of the signal from the start through `now`.
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * (now - self.last_update)
    }

    /// The time average of the signal over `[start, now]`; `0.0` if no time
    /// has elapsed.
    pub fn time_average(&self, now: SimTime) -> f64 {
        let elapsed = now - self.start;
        if elapsed <= 0.0 {
            0.0
        } else {
            self.integral(now) / elapsed
        }
    }

    /// Restarts the statistic at `now`, keeping the current signal value —
    /// used to discard the warm-up transient.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.last_update = now;
        self.integral = 0.0;
        self.peak = self.value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_average_is_value() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 2.0);
        u.update(SimTime::from(5.0), 2.0);
        assert_eq!(u.time_average(SimTime::from(5.0)), 2.0);
    }

    #[test]
    fn square_wave_average() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
        u.update(SimTime::from(1.0), 1.0);
        u.update(SimTime::from(2.0), 0.0);
        u.update(SimTime::from(3.0), 1.0);
        u.update(SimTime::from(4.0), 0.0);
        assert_eq!(u.time_average(SimTime::from(4.0)), 0.5);
        assert_eq!(u.peak(), 1.0);
    }

    #[test]
    fn average_extends_current_value_to_now() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
        u.update(SimTime::from(2.0), 3.0);
        // Signal is 3.0 on [2, 6): integral = 0·2 + 3·4 = 12 over 6 units.
        assert_eq!(u.time_average(SimTime::from(6.0)), 2.0);
    }

    #[test]
    fn zero_elapsed_time_average_is_zero() {
        let u = TimeWeighted::new(SimTime::from(3.0), 5.0);
        assert_eq!(u.time_average(SimTime::from(3.0)), 0.0);
    }

    #[test]
    fn reset_discards_history_but_keeps_value() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 1.0);
        u.update(SimTime::from(10.0), 4.0);
        u.reset(SimTime::from(10.0));
        assert_eq!(u.value(), 4.0);
        assert_eq!(u.integral(SimTime::from(10.0)), 0.0);
        assert_eq!(u.time_average(SimTime::from(12.0)), 4.0);
        assert_eq!(u.peak(), 4.0);
    }
}
