//! Streaming quantile estimation (the P² algorithm).

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile using the P² algorithm
/// (Jain & Chlamtac, CACM 1985): five markers track the quantile with
/// O(1) memory and per-observation cost, no sample storage.
///
/// Used for tail statistics (e.g. P95/P99 tardiness) over millions of
/// task completions, where storing samples is not an option.
///
/// # Examples
///
/// ```
/// use sda_sim::stats::P2Quantile;
///
/// let mut p90 = P2Quantile::new(0.9)?;
/// for i in 1..=1_000 {
///     p90.add(f64::from(i));
/// }
/// let est = p90.estimate().unwrap();
/// assert!((est - 900.0).abs() < 20.0, "P90 of 1..=1000 ≈ 900, got {est}");
/// # Ok::<(), sda_sim::stats::QuantileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (the 5 tracked order statistics).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: u64,
    /// First five observations, collected before the markers initialize.
    warmup: Vec<f64>,
}

/// Error constructing a [`P2Quantile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantileError;

impl std::fmt::Display for QuantileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "quantile must lie strictly between 0 and 1")
    }
}

impl std::error::Error for QuantileError {}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `0 < p < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantileError`] if `p` is outside `(0, 1)`.
    pub fn new(p: f64) -> Result<P2Quantile, QuantileError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(QuantileError);
        }
        Ok(P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        })
    }

    /// The target quantile.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN observations"));
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // Find the cell k such that q[k] ≤ x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for item in self.n.iter_mut().skip(k + 1) {
            *item += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with parabolic (or linear) moves.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate; `None` before any observation. With fewer
    /// than five observations this is the exact sample quantile.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            let mut sorted = self.warmup.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN observations"));
            let rank = (self.p * (sorted.len() - 1) as f64).round() as usize;
            return Some(sorted[rank.min(sorted.len() - 1)]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;
    use rand::Rng;

    #[test]
    fn rejects_degenerate_quantiles() {
        assert!(P2Quantile::new(0.0).is_err());
        assert!(P2Quantile::new(1.0).is_err());
        assert!(P2Quantile::new(-0.5).is_err());
        assert!(P2Quantile::new(0.5).is_ok());
    }

    #[test]
    fn empty_and_tiny_streams() {
        let mut q = P2Quantile::new(0.5).unwrap();
        assert_eq!(q.estimate(), None);
        q.add(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.add(1.0);
        q.add(2.0);
        assert_eq!(q.count(), 3);
        let est = q.estimate().unwrap();
        assert!((1.0..=3.0).contains(&est));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut q = P2Quantile::new(0.5).unwrap();
        let mut rng = RngFactory::new(1).stream("p2");
        for _ in 0..100_000 {
            q.add(rng.gen::<f64>());
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median {est}");
    }

    #[test]
    fn p99_of_exponential_stream() {
        use crate::dist::{Dist, Exponential};
        let exp = Exponential::with_mean(1.0).unwrap();
        let mut q = P2Quantile::new(0.99).unwrap();
        let mut rng = RngFactory::new(2).stream("p2-exp");
        for _ in 0..200_000 {
            q.add(exp.sample(&mut rng));
        }
        // True P99 of Exp(1) = ln(100) ≈ 4.605.
        let est = q.estimate().unwrap();
        assert!((est - 4.605).abs() < 0.35, "P99 {est}");
    }

    #[test]
    fn monotone_quantiles() {
        let mut q25 = P2Quantile::new(0.25).unwrap();
        let mut q75 = P2Quantile::new(0.75).unwrap();
        let mut rng = RngFactory::new(3).stream("p2-mono");
        for _ in 0..50_000 {
            let x: f64 = rng.gen();
            q25.add(x);
            q75.add(x);
        }
        assert!(q25.estimate().unwrap() < q75.estimate().unwrap());
    }

    #[test]
    fn constant_stream_collapses() {
        let mut q = P2Quantile::new(0.9).unwrap();
        for _ in 0..1000 {
            q.add(7.0);
        }
        assert_eq!(q.estimate(), Some(7.0));
    }

    #[test]
    fn huge_outliers_keep_the_estimate_finite() {
        // Heavy-traffic sojourn streams: mostly moderate values with
        // rare outliers up to 1e300. The marker arithmetic (parabolic
        // interpolation) must not produce NaN or lose finiteness.
        let mut q = P2Quantile::new(0.99).unwrap();
        let mut rng = RngFactory::new(9).stream("p2-outlier");
        for i in 0..50_000u64 {
            let x: f64 = rng.gen();
            let v = match i % 1000 {
                0 => 1.0e300,
                1 => 1.0e12,
                _ => x * 10.0,
            };
            q.add(v);
            if i % 7777 == 0 {
                let est = q.estimate().unwrap();
                assert!(!est.is_nan(), "NaN estimate at i={i}");
            }
        }
        let est = q.estimate().unwrap();
        assert!(est.is_finite(), "estimate not finite: {est}");
        // P99 of the bulk (U[0,10]) is ~9.9; outliers pull it up but it
        // must stay a real number below the largest observation.
        assert!(est <= 1.0e300 && est > 0.0);
    }

    #[test]
    fn adversarial_warmup_order_is_handled() {
        // Descending and mixed-magnitude warmups exercise the initial
        // marker sort and the first adjustment steps.
        for warmup in [
            [1.0e300, 1.0e12, 5.0, 1.0e-12, 0.0],
            [5.0, 4.0, 3.0, 2.0, 1.0],
            [1.0, 1.0, 1.0e15, 1.0, 1.0],
        ] {
            let mut q = P2Quantile::new(0.95).unwrap();
            for v in warmup {
                q.add(v);
            }
            for i in 0..1000 {
                q.add(f64::from(i % 13));
            }
            let est = q.estimate().unwrap();
            assert!(!est.is_nan(), "NaN after warmup {warmup:?}");
            assert!(est >= 0.0);
        }
    }
}
