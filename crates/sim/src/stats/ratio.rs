//! Ratio (proportion) counters.

use serde::{Deserialize, Serialize};

/// Counts events and "hits" among them, reporting the hit fraction —
/// the natural representation of a **missed-deadline ratio**.
///
/// # Examples
///
/// ```
/// use sda_sim::stats::Ratio;
///
/// let mut md = Ratio::new();
/// md.record(true);  // missed
/// md.record(false); // met
/// md.record(false); // met
/// assert_eq!(md.numerator(), 1);
/// assert_eq!(md.denominator(), 3);
/// assert!((md.fraction() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// An empty ratio (0/0).
    pub fn new() -> Ratio {
        Ratio::default()
    }

    /// Records one event; `hit` says whether it counts in the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Adds another ratio's counts into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// The numerator (hit count).
    pub fn numerator(&self) -> u64 {
        self.hits
    }

    /// The denominator (event count).
    pub fn denominator(&self) -> u64 {
        self.total
    }

    /// The hit fraction in `[0, 1]`; `0.0` when no events were recorded.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The hit fraction as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        100.0 * self.fraction()
    }

    /// Whether any events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Resets both counters to zero (warm-up handling).
    pub fn reset(&mut self) {
        *self = Ratio::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ratio_is_zero() {
        let r = Ratio::new();
        assert!(r.is_empty());
        assert_eq!(r.fraction(), 0.0);
        assert_eq!(r.percent(), 0.0);
    }

    #[test]
    fn counts_and_percent() {
        let mut r = Ratio::new();
        for i in 0..10 {
            r.record(i < 4);
        }
        assert_eq!(r.numerator(), 4);
        assert_eq!(r.denominator(), 10);
        assert_eq!(r.percent(), 40.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Ratio::new();
        a.record(true);
        let mut b = Ratio::new();
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.numerator(), 2);
        assert_eq!(a.denominator(), 3);
    }

    #[test]
    fn reset_clears() {
        let mut r = Ratio::new();
        r.record(true);
        r.reset();
        assert!(r.is_empty());
    }
}
