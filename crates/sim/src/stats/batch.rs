//! Batch-means confidence intervals for within-run output analysis.

use serde::{Deserialize, Serialize};

use super::ci::ConfidenceInterval;
use super::tally::Tally;

/// The method of batch means: consecutive observations are grouped into
/// fixed-size batches, and the batch averages — approximately independent
/// for large batches — feed a Student-t confidence interval.
///
/// This is the classic single-long-run output analysis used by DeNet-era
/// simulation studies (the paper runs 10⁶ time units per run and reports
/// ±0.35 pp at 95%).
///
/// # Examples
///
/// ```
/// use sda_sim::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new(100);
/// for i in 0..1000 {
///     bm.add(f64::from(i % 10));
/// }
/// assert_eq!(bm.completed_batches(), 10);
/// let ci = bm.confidence_interval().unwrap();
/// assert!((ci.mean - 4.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: u64,
    current: Tally,
    batch_means: Tally,
}

impl BatchMeans {
    /// Creates a collector with the given batch size (`≥ 1`; a size of 0 is
    /// coerced to 1).
    pub fn new(batch_size: u64) -> BatchMeans {
        BatchMeans {
            batch_size: batch_size.max(1),
            current: Tally::new(),
            batch_means: Tally::new(),
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.current.add(x);
        if self.current.count() >= self.batch_size {
            self.batch_means.add(self.current.mean());
            self.current = Tally::new();
        }
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Mean over completed batches (ignores the partial batch in progress).
    pub fn mean(&self) -> f64 {
        self.batch_means.mean()
    }

    /// A 95% confidence interval over the batch means; `None` until at
    /// least two batches have completed.
    pub fn confidence_interval(&self) -> Option<ConfidenceInterval> {
        if self.batch_means.count() < 2 {
            return None;
        }
        Some(ConfidenceInterval::from_moments(
            self.batch_means.mean(),
            self.batch_means.std_dev(),
            self.batch_means.count(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_complete_at_size() {
        let mut bm = BatchMeans::new(5);
        for _ in 0..14 {
            bm.add(1.0);
        }
        assert_eq!(bm.completed_batches(), 2);
    }

    #[test]
    fn zero_batch_size_coerced() {
        let mut bm = BatchMeans::new(0);
        bm.add(2.0);
        assert_eq!(bm.completed_batches(), 1);
    }

    #[test]
    fn ci_unavailable_below_two_batches() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..10 {
            bm.add(1.0);
        }
        assert!(bm.confidence_interval().is_none());
        for _ in 0..10 {
            bm.add(3.0);
        }
        let ci = bm.confidence_interval().unwrap();
        assert_eq!(ci.mean, 2.0);
    }

    #[test]
    fn constant_stream_has_zero_width() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..100 {
            bm.add(7.0);
        }
        let ci = bm.confidence_interval().unwrap();
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.half_width, 0.0);
    }
}
