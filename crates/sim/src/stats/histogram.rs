//! Fixed-width histograms with under/overflow buckets.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins, plus underflow and
/// overflow buckets. Used for lateness/tardiness distributions.
///
/// # Examples
///
/// ```
/// use sda_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10)?;
/// for x in [0.5, 1.5, 1.7, 25.0, -3.0] {
///     h.add(x);
/// }
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.total(), 5);
/// # Ok::<(), sda_sim::stats::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

/// Error constructing a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramError;

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "histogram needs finite lo < hi and at least one bin")
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins ≥ 1` equal bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] if `lo ≥ hi`, a bound is non-finite, or
    /// `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Histogram, HistogramError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi && bins > 0) {
            return Err(HistogramError);
        }
        Ok(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The `[lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Estimates the `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the containing bin. Under/overflow observations clamp to the
    /// range bounds. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * total as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Iterates over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins.len()).map(move |i| {
            let (lo, hi) = self.bin_edges(i);
            (lo, hi, self.bins[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(0.0);
        h.add(0.999);
        h.add(1.0);
        h.add(3.9999);
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.bin_edges(2), (2.0, 3.0));
    }

    #[test]
    fn boundary_value_goes_to_overflow() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(4.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(3), 0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..100 {
            h.add(f64::from(i) / 10.0); // uniform 0.0..9.9
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() < 0.5, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert!(h.quantile(1.0).unwrap() <= 10.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn iter_covers_all_bins() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.add(0.5);
        h.add(1.5);
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0.0, 1.0, 1), (1.0, 2.0, 1)]);
    }
}
