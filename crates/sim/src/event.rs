//! The future-event list.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Handles are unique for the lifetime of an [`EventQueue`]; cancelling an
/// already-fired or already-cancelled event is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

/// An event extracted from the queue: its firing time plus the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The simulation time at which the event fires.
    pub time: SimTime,
    /// The model-defined payload.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Primary key: time. Secondary key: insertion sequence, which makes
        // simultaneous events fire in FIFO order — the property that makes
        // the whole simulation deterministic.
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A future-event list: a priority queue of `(time, payload)` pairs with
/// deterministic FIFO ordering among simultaneous events and lazy O(log n)
/// cancellation.
///
/// # Examples
///
/// ```
/// use sda_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from(2.0), "late");
/// let h = q.schedule(SimTime::from(1.0), "early");
/// q.schedule(SimTime::from(1.0), "early-2nd");
/// q.cancel(h);
/// assert_eq!(q.pop().unwrap().event, "early-2nd");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Seqs scheduled but neither fired nor cancelled.
    pending: HashSet<u64>,
    /// Seqs cancelled while still in the heap; skipped lazily on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now cancelled), `false` if it had already fired
    /// or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if self.pending.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            return Some(ScheduledEvent {
                time: entry.time,
                event: entry.event,
            });
        }
        None
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the top so the peeked time is live.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of events ever scheduled (fired, pending or cancelled).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.pending.len())
            .field("scheduled_total", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from(3.0), 3);
        q.schedule(SimTime::from(1.0), 1);
        q.schedule(SimTime::from(2.0), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn cancellation_skips_events_and_tracks_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from(1.0), "a");
        q.schedule(SimTime::from(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from(1.0), "a");
        q.schedule(SimTime::from(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from(5.0)));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::ZERO, 0);
        q.schedule(SimTime::ZERO, 1);
        q.cancel(h);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }
}
