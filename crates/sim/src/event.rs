//! The future-event list: a slab-backed priority queue with
//! generation-stamped O(1) cancellation and a handle-free fast path.
//!
//! Two scheduling paths share one heap:
//!
//! * [`EventQueue::schedule`] — for events that may later be cancelled.
//!   The payload lives in a slab slot stamped with a generation counter;
//!   the returned [`EventHandle`] encodes `(slot, generation)`.
//!   Cancellation bumps the slot's generation — O(1), no tombstone set —
//!   and the heap entry is skipped lazily when it surfaces.
//! * [`EventQueue::schedule_fast`] — for events that are never cancelled
//!   (the overwhelming majority in a simulation: arrivals, timers,
//!   non-preemptible completions). The payload travels inline in the heap
//!   entry: no slot, no generation, no handle, no bookkeeping of any kind
//!   beyond the heap push itself.
//!
//! Both paths order by `(time, sequence)`, so simultaneous events fire in
//! FIFO order regardless of which path scheduled them — the property that
//! makes the whole simulation deterministic. The pair is packed into one
//! `u128` ([`pq::key_from_f64`] bits above the sequence number) so the
//! underlying [`pq::MinHeap`] compares a single integer per sift step.

use std::fmt;

use crate::pq::{self, MinHeap};
use crate::time::SimTime;

/// Opaque handle to a cancellable scheduled event.
///
/// A handle names one specific scheduling: cancelling an already-fired or
/// already-cancelled event is a no-op (the slot's generation has moved
/// on). Handles from [`EventQueue::schedule_fast`] don't exist — that is
/// the point of the fast path.
///
/// Generations are 64-bit, so a slot would need 2⁶⁴ reuses before a
/// stale handle could alias a live event — out of reach for any run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle {
    slot: u32,
    generation: u64,
}

impl EventHandle {
    #[inline]
    fn new(slot: u32, generation: u64) -> EventHandle {
        EventHandle { slot, generation }
    }

    #[inline]
    fn slot(self) -> u32 {
        self.slot
    }

    #[inline]
    fn generation(self) -> u64 {
        self.generation
    }
}

/// An event extracted from the queue: its firing time plus the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The simulation time at which the event fires.
    pub time: SimTime,
    /// The model-defined payload.
    pub event: E,
}

/// Where a heap entry's payload lives.
enum Payload<E> {
    /// Never-cancellable payload carried in the heap entry itself.
    Inline(E),
    /// Cancellable payload parked in `slots[slot]`, valid only while the
    /// slot's generation still equals `generation`.
    Slotted { slot: u32, generation: u64 },
}

/// Packs `(time, seq)` into the heap key: time bits (order-preserving)
/// above, insertion sequence below, so simultaneous events fire in FIFO
/// order — the property that makes the whole simulation deterministic.
#[inline]
fn pack_key(time: SimTime, seq: u64) -> u128 {
    (u128::from(pq::key_from_f64(time.as_f64())) << 64) | u128::from(seq)
}

/// Seeded bijective scramble of the FIFO sequence (a splitmix64-style
/// finalizer: add, xor-shift, odd multiplies). Being a bijection on
/// `u64`, scrambled sequences stay unique — no two heap keys ever
/// collide — while the *order* of simultaneous events becomes a seeded
/// pseudo-random permutation. Time order is untouched: the scramble
/// only fills the low 64 bits of the packed key.
#[inline]
fn scramble_seq(seq: u64, seed: u64) -> u64 {
    let mut z = seq.wrapping_add(seed);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn time_of_key(key: u128) -> SimTime {
    SimTime::new(pq::f64_from_key((key >> 64) as u64))
}

/// One slab slot for a cancellable event's payload.
struct Slot<E> {
    /// Bumped every time the slot's payload is consumed (fired or
    /// cancelled); heap entries carrying an older generation are stale.
    /// 64-bit so it never wraps into an ABA aliasing in practice.
    generation: u64,
    event: Option<E>,
}

/// A future-event list: a priority queue of `(time, payload)` pairs with
/// deterministic FIFO ordering among simultaneous events, O(1)
/// cancellation, and a zero-bookkeeping path for never-cancelled events.
///
/// # Examples
///
/// ```
/// use sda_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_fast(SimTime::from(2.0), "late");
/// let h = q.schedule(SimTime::from(1.0), "early");
/// q.schedule_fast(SimTime::from(1.0), "early-2nd");
/// q.cancel(h);
/// assert_eq!(q.pop().unwrap().event, "early-2nd");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: MinHeap<Payload<E>>,
    /// Slab of cancellable payloads, indexed by [`EventHandle::slot`].
    slots: Vec<Slot<E>>,
    /// Indices of vacant slab slots available for reuse.
    free: Vec<u32>,
    next_seq: u64,
    /// Pending (scheduled, not yet fired or cancelled) events.
    live: usize,
    /// Order-fuzz seed: 0 = exact FIFO among simultaneous events (the
    /// default); non-zero scrambles the sequence bits of every key
    /// through [`scramble_seq`], turning same-timestamp order into a
    /// seeded permutation.
    fuzz: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: MinHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            live: 0,
            fuzz: 0,
        }
    }

    #[inline]
    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// The sequence bits the next event's key will carry: the raw FIFO
    /// sequence by default, a seeded bijective scramble of it under
    /// order fuzz.
    #[inline]
    fn key_seq(&mut self) -> u64 {
        let seq = self.next_seq();
        if self.fuzz == 0 {
            seq
        } else {
            scramble_seq(seq, self.fuzz)
        }
    }

    /// Sets the order-fuzz seed. `0` (the default) keeps the documented
    /// FIFO order among simultaneous events; any other value replaces
    /// that tie order with a seeded pseudo-random permutation (still
    /// fully deterministic for a given seed, and never affecting the
    /// time order). A model whose observable behavior is tie-order
    /// independent — as a discrete-event simulation over continuous
    /// distributions should be — produces identical results under every
    /// seed, which is exactly what fuzz harnesses assert.
    ///
    /// Affects only events scheduled *after* the call; set it before
    /// scheduling anything for a whole-run permutation.
    pub fn set_order_fuzz(&mut self, seed: u64) {
        self.fuzz = seed;
    }

    /// The active order-fuzz seed (0 = exact FIFO).
    pub fn order_fuzz(&self) -> u64 {
        self.fuzz
    }

    /// Schedules `event` to fire at `time`. Returns a handle usable with
    /// [`EventQueue::cancel`].
    ///
    /// Prefer [`EventQueue::schedule_fast`] for events that will never be
    /// cancelled; it skips the slab entirely.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventHandle {
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.event.is_none(), "free list pointed at a full slot");
                s.event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("more than u32::MAX simultaneous cancellable events");
                self.slots.push(Slot {
                    generation: 0,
                    event: Some(event),
                });
                slot
            }
        };
        let generation = self.slots[slot as usize].generation;
        let seq = self.key_seq();
        self.heap
            .push(pack_key(time, seq), Payload::Slotted { slot, generation });
        self.live += 1;
        EventHandle::new(slot, generation)
    }

    /// Schedules `event` at `time` with no way to cancel it — the
    /// hot path. The payload rides inline in the heap entry: no slab
    /// traffic, no handle, no per-event bookkeeping.
    pub fn schedule_fast(&mut self, time: SimTime, event: E) {
        let seq = self.key_seq();
        self.heap.push(pack_key(time, seq), Payload::Inline(event));
        self.live += 1;
    }

    /// Cancels a previously scheduled event in O(1). Returns `true` if the
    /// event was still pending (and is now cancelled), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get_mut(handle.slot() as usize) else {
            return false;
        };
        if slot.generation != handle.generation() || slot.event.is_none() {
            return false;
        }
        slot.event = None;
        slot.generation += 1;
        self.free.push(handle.slot());
        self.live -= 1;
        true
    }

    /// Consumes the payload a surfaced heap entry refers to, or `None`
    /// if the entry is stale (its event was cancelled).
    #[inline]
    fn claim(&mut self, payload: Payload<E>) -> Option<E> {
        match payload {
            Payload::Inline(event) => Some(event),
            Payload::Slotted { slot, generation } => {
                let s = &mut self.slots[slot as usize];
                if s.generation != generation {
                    return None;
                }
                let event = s.event.take().expect("live generation with empty slot");
                s.generation += 1;
                self.free.push(slot);
                Some(event)
            }
        }
    }

    /// Removes and returns the earliest pending event, skipping stale
    /// (cancelled) entries. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some((key, payload)) = self.heap.pop() {
            if let Some(event) = self.claim(payload) {
                self.live -= 1;
                return Some(ScheduledEvent {
                    time: time_of_key(key),
                    event,
                });
            }
        }
        None
    }

    /// Pops the earliest pending event only if it fires at or before
    /// `horizon` — the one-heap-access fast path for
    /// [`Engine::run_until`](crate::Engine::run_until) loops.
    pub fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        let horizon_key = pq::key_from_f64(horizon.as_f64());
        loop {
            let (key, _) = self.heap.peek()?;
            if (key >> 64) as u64 > horizon_key {
                return None;
            }
            let (key, payload) = self.heap.pop().expect("peeked entry exists");
            if let Some(event) = self.claim(payload) {
                self.live -= 1;
                return Some(ScheduledEvent {
                    time: time_of_key(key),
                    event,
                });
            }
        }
    }

    /// Pops the earliest pending event only if it fires strictly before
    /// `bound` — the window-loop variant of
    /// [`EventQueue::pop_at_or_before`] used by the sharded engine, where
    /// a window `[T, T + W)` owns its left edge but not its right.
    pub fn pop_before(&mut self, bound: SimTime) -> Option<ScheduledEvent<E>> {
        let bound_key = pq::key_from_f64(bound.as_f64());
        loop {
            let (key, _) = self.heap.peek()?;
            if (key >> 64) as u64 >= bound_key {
                return None;
            }
            let (key, payload) = self.heap.pop().expect("peeked entry exists");
            if let Some(event) = self.claim(payload) {
                self.live -= 1;
                return Some(ScheduledEvent {
                    time: time_of_key(key),
                    event,
                });
            }
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop stale entries from the top so the peeked time is live.
        while let Some((key, payload)) = self.heap.peek() {
            match *payload {
                Payload::Inline(_) => return Some(time_of_key(key)),
                Payload::Slotted { slot, generation } => {
                    if self.slots[slot as usize].generation == generation {
                        return Some(time_of_key(key));
                    }
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total number of events ever scheduled (fired, pending or
    /// cancelled), across both paths.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Capacity currently committed to the cancellable-event slab.
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.live)
            .field("scheduled_total", &self.next_seq)
            .field("slab_capacity", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from(3.0), 3);
        q.schedule(SimTime::from(1.0), 1);
        q.schedule(SimTime::from(2.0), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn fast_and_slow_paths_share_fifo_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            if i % 2 == 0 {
                q.schedule_fast(SimTime::from(1.0), i);
            } else {
                q.schedule(SimTime::from(1.0), i);
            }
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn cancellation_skips_events_and_tracks_len() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from(1.0), "a");
        q.schedule(SimTime::from(2.0), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_of_unknown_handle_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle::new(42, 0)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from(1.0), "a");
        assert_eq!(q.pop().unwrap().event, "a");
        assert!(!q.cancel(h), "handle to a fired event is dead");
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handles() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(SimTime::from(1.0), 1);
        assert!(q.cancel(h1));
        // The slot is reused with a fresh generation.
        let h2 = q.schedule(SimTime::from(2.0), 2);
        assert!(!q.cancel(h1), "stale handle must not hit the reused slot");
        assert_eq!(q.pop().unwrap().event, 2);
        assert!(!q.cancel(h2));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from(1.0), "a");
        q.schedule(SimTime::from(5.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from(5.0)));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::ZERO, 0);
        q.schedule_fast(SimTime::ZERO, 1);
        q.cancel(h);
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn slab_only_grows_with_concurrent_cancellables() {
        let mut q = EventQueue::new();
        for i in 0..1_000 {
            let h = q.schedule(SimTime::from(f64::from(i)), i);
            q.cancel(h);
        }
        assert_eq!(q.slab_capacity(), 1, "cancel frees the slot for reuse");
        for i in 0..1_000 {
            q.schedule_fast(SimTime::from(f64::from(i)), i);
        }
        assert_eq!(q.slab_capacity(), 1, "fast path never touches the slab");
    }

    #[test]
    fn pop_before_is_strict() {
        let mut q = EventQueue::new();
        q.schedule_fast(SimTime::from(1.0), "a");
        q.schedule_fast(SimTime::from(2.0), "b");
        assert_eq!(q.pop_before(SimTime::from(1.0)), None, "bound is exclusive");
        assert_eq!(q.pop_before(SimTime::from(2.0)).unwrap().event, "a");
        assert_eq!(q.pop_before(SimTime::from(2.0)), None);
        assert_eq!(q.pop_at_or_before(SimTime::from(2.0)).unwrap().event, "b");
    }

    #[test]
    fn pop_before_skips_cancelled_entries() {
        let mut q = EventQueue::new();
        let h = q.schedule(SimTime::from(1.0), "dead");
        q.schedule_fast(SimTime::from(1.5), "live");
        q.cancel(h);
        assert_eq!(q.pop_before(SimTime::from(2.0)).unwrap().event, "live");
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    #[test]
    fn order_fuzz_permutes_only_same_timestamp_order() {
        // Two timestamps, many events each: fuzz must keep the time
        // order exact, deliver every event exactly once, and actually
        // permute the equal-time order for some seed.
        let run = |fuzz: u64| -> Vec<i32> {
            let mut q = EventQueue::new();
            q.set_order_fuzz(fuzz);
            for i in 0..32 {
                q.schedule_fast(SimTime::from(1.0), i);
                q.schedule_fast(SimTime::from(2.0), 100 + i);
            }
            let mut out = Vec::new();
            while let Some(ev) = q.pop() {
                out.push(ev.event);
            }
            out
        };
        let fifo = run(0);
        assert_eq!(fifo, (0..32).chain(100..132).collect::<Vec<_>>());
        let mut any_permuted = false;
        for seed in 1..=8u64 {
            let fuzzed = run(seed);
            // Same multiset, and all t=1 events still precede all t=2.
            let mut sorted = fuzzed.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, fifo, "seed {seed} lost or duplicated events");
            assert!(
                fuzzed[..32].iter().all(|&e| e < 100),
                "seed {seed} let a t=2 event jump the time order"
            );
            if fuzzed != fifo {
                any_permuted = true;
            }
            // Determinism: the same seed replays the same permutation.
            assert_eq!(fuzzed, run(seed), "seed {seed} is not deterministic");
        }
        assert!(any_permuted, "no seed permuted the tie order");
    }

    #[test]
    fn order_fuzz_zero_is_identity_and_scramble_is_bijective() {
        assert_eq!(EventQueue::<u8>::new().order_fuzz(), 0);
        // Injectivity spot-check over a window of sequences.
        let mut seen: Vec<u64> = (0..4096).map(|s| scramble_seq(s, 0xF722)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4096, "scramble collided within a window");
    }

    #[test]
    fn order_fuzz_preserves_cancellation_semantics() {
        let mut q = EventQueue::new();
        q.set_order_fuzz(0xDEAD);
        let handles: Vec<_> = (0..16).map(|i| q.schedule(SimTime::from(1.0), i)).collect();
        for h in handles.iter().step_by(2) {
            assert!(q.cancel(*h));
        }
        let mut survivors = Vec::new();
        while let Some(ev) = q.pop() {
            survivors.push(ev.event);
        }
        survivors.sort_unstable();
        assert_eq!(
            survivors,
            (0..16).filter(|i| i % 2 == 1).collect::<Vec<_>>()
        );
        for h in handles {
            assert!(!q.cancel(h), "all handles dead after drain");
        }
    }
}
