//! Simulation clock values.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point on the simulation clock, in abstract model time units.
///
/// The paper relativizes all times to the mean execution time of a local
/// task (`μ_local = 1`), so a `SimTime` of `1.0` is "one mean local service
/// time". `SimTime` wraps an `f64` but provides a *total* order (via
/// [`f64::total_cmp`]), which lets it key the future-event list.
///
/// Invariants: a `SimTime` is never NaN. Constructors debug-assert this and
/// arithmetic preserves it for finite inputs.
///
/// # Examples
///
/// ```
/// use sda_sim::SimTime;
///
/// let t = SimTime::ZERO + 2.5;
/// assert_eq!(t.as_f64(), 2.5);
/// assert!(t < SimTime::INFINITY);
/// assert_eq!(t - SimTime::from(1.0), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time later than every finite time; useful as a sentinel.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Creates a time value from raw model units.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `t` is NaN.
    #[inline]
    pub fn new(t: f64) -> SimTime {
        debug_assert!(!t.is_nan(), "SimTime must not be NaN");
        SimTime(t)
    }

    /// Returns the raw model-time value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns `true` if this time is finite (not the `INFINITY` sentinel).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Elapsed duration since `earlier`, in model units. Negative if
    /// `earlier` is actually later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        self.0 - earlier.0
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<f64> for SimTime {
    #[inline]
    fn from(t: f64) -> SimTime {
        SimTime::new(t)
    }
}

impl From<SimTime> for f64 {
    #[inline]
    fn from(t: SimTime) -> f64 {
        t.0
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, dt: f64) {
        self.0 += dt;
        debug_assert!(!self.0.is_nan());
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    #[inline]
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl Sub<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, dt: f64) -> SimTime {
        SimTime::new(self.0 - dt)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_matches_f64() {
        let a = SimTime::from(1.0);
        let b = SimTime::from(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(a < SimTime::INFINITY);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from(3.0) + 1.5;
        assert_eq!(t.as_f64(), 4.5);
        assert_eq!(t - SimTime::from(4.0), 0.5);
        assert_eq!((t - 0.5).as_f64(), 4.0);
        let mut u = SimTime::ZERO;
        u += 2.0;
        assert_eq!(u.as_f64(), 2.0);
    }

    #[test]
    fn min_max_and_since() {
        let a = SimTime::from(1.0);
        let b = SimTime::from(5.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.since(a), 4.0);
        assert_eq!(a.since(b), -4.0);
    }

    #[test]
    fn default_is_zero_and_infinity_not_finite() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert!(SimTime::ZERO.is_finite());
        assert!(!SimTime::INFINITY.is_finite());
    }

    #[test]
    fn display_formats_value() {
        assert_eq!(SimTime::from(1.25).to_string(), "t=1.250000");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = SimTime::new(f64::NAN);
    }
}
