//! Fixed-capacity single-producer/single-consumer mailboxes for the
//! sharded conservative-parallel engine.
//!
//! A [`Mailbox`] carries timestamped hand-offs between exactly one
//! producer thread and one consumer thread. Transfers only ever happen
//! at window barriers of the sharded engine — the producer fills the box
//! during its phase, a barrier orders the hand-off, and the consumer
//! drains it in the next phase — so the lock below is uncontended in
//! practice. The crate forbids `unsafe`, which rules out a lock-free
//! ring; a `Mutex<VecDeque>` with batch drains gives the same amortized
//! zero-allocation behavior once warm (the deque is pre-reserved to
//! `capacity` and never grows past it).
//!
//! Capacity is a hard bound: [`Mailbox::push`] reports failure instead
//! of reallocating, so a shard that produces faster than its peer
//! consumes surfaces immediately as a sizing error rather than silently
//! degrading the allocation-free guarantee.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded SPSC channel drained in batches at synchronization points.
///
/// # Examples
///
/// ```
/// use sda_sim::mailbox::Mailbox;
///
/// let m: Mailbox<u32> = Mailbox::with_capacity(4);
/// assert!(m.push(1));
/// assert!(m.push(2));
/// let mut out = Vec::new();
/// m.drain_into(&mut out);
/// assert_eq!(out, [1, 2]);
/// ```
pub struct Mailbox<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> Mailbox<T> {
    /// Creates a mailbox that holds at most `capacity` pending items,
    /// with all storage reserved up front.
    pub fn with_capacity(capacity: usize) -> Mailbox<T> {
        Mailbox {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The fixed capacity this mailbox was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends `item`, or returns `false` (dropping nothing already
    /// queued, returning `item` ownership to the allocator) when the
    /// mailbox is full. Callers treat a full mailbox as a capacity-sizing
    /// bug, not a flow-control signal.
    #[must_use]
    pub fn push(&self, item: T) -> bool {
        let mut q = self.inner.lock().expect("mailbox lock poisoned");
        if q.len() >= self.capacity {
            return false;
        }
        q.push_back(item);
        true
    }

    /// Moves every pending item into `out` (preserving FIFO order) under
    /// a single lock acquisition, leaving the mailbox empty.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        let mut q = self.inner.lock().expect("mailbox lock poisoned");
        out.extend(q.drain(..));
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mailbox lock poisoned").len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_preserve_fifo_order() {
        let m = Mailbox::with_capacity(8);
        for i in 0..5 {
            assert!(m.push(i));
        }
        assert_eq!(m.len(), 5);
        let mut out = Vec::new();
        m.drain_into(&mut out);
        assert_eq!(out, [0, 1, 2, 3, 4]);
        assert!(m.is_empty());
    }

    #[test]
    fn push_fails_at_capacity_without_losing_queued_items() {
        let m = Mailbox::with_capacity(2);
        assert!(m.push('a'));
        assert!(m.push('b'));
        assert!(!m.push('c'), "third push must report a full mailbox");
        let mut out = Vec::new();
        m.drain_into(&mut out);
        assert_eq!(out, ['a', 'b']);
        // Drained capacity is available again.
        assert!(m.push('d'));
    }

    #[test]
    fn drain_appends_to_existing_contents() {
        let m = Mailbox::with_capacity(4);
        assert!(m.push(10));
        let mut out = vec![99];
        m.drain_into(&mut out);
        assert_eq!(out, [99, 10]);
    }

    #[test]
    fn crosses_threads() {
        let m = std::sync::Arc::new(Mailbox::with_capacity(64));
        let producer = std::sync::Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                assert!(producer.push(i));
            }
        });
        handle.join().unwrap();
        let mut out = Vec::new();
        m.drain_into(&mut out);
        assert_eq!(out.len(), 10);
    }
}
