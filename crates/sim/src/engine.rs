//! The event loop: [`Engine`], [`Context`] and the [`Simulation`] trait.

use std::fmt;

use crate::event::{EventHandle, EventQueue};
use crate::time::SimTime;

/// A discrete-event model.
///
/// The engine pops the earliest event, advances the clock, and calls
/// [`Simulation::handle`], which may schedule further events through the
/// [`Context`]. See the [crate-level example](crate).
pub trait Simulation {
    /// The model-defined event payload type.
    type Event;

    /// Reacts to `event` firing at `ctx.now()`.
    fn handle(&mut self, ctx: &mut Context<Self::Event>, event: Self::Event);
}

/// The engine-side state visible to a model while it handles an event:
/// the clock and the future-event list.
pub struct Context<E> {
    now: SimTime,
    queue: EventQueue<E>,
    stop_requested: bool,
    events_handled: u64,
}

impl<E> Context<E> {
    fn new() -> Context<E> {
        Context {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            stop_requested: false,
            events_handled: 0,
        }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`, returning a handle for
    /// possible cancellation.
    ///
    /// Prefer [`Context::schedule_fast_at`] when the event will never be
    /// cancelled; it skips all handle bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: the simulation
    /// cannot travel into the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        self.assert_future(at);
        self.queue.schedule(at, event)
    }

    /// Schedules `event` after a delay of `dt ≥ 0` model units, returning
    /// a handle for possible cancellation.
    ///
    /// Prefer [`Context::schedule_fast_in`] when the event will never be
    /// cancelled; it skips all handle bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative, infinite or NaN.
    pub fn schedule_in(&mut self, dt: f64, event: E) -> EventHandle {
        self.assert_delay(dt);
        self.queue.schedule(self.now + dt, event)
    }

    /// Schedules a never-cancellable `event` at absolute time `at` — the
    /// hot path: no handle, no slab traffic, just a heap push.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_fast_at(&mut self, at: SimTime, event: E) {
        self.assert_future(at);
        self.queue.schedule_fast(at, event);
    }

    /// Schedules a never-cancellable `event` after a delay of `dt ≥ 0`
    /// model units — the hot path: no handle, no slab traffic, just a
    /// heap push.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative, infinite or NaN.
    pub fn schedule_fast_in(&mut self, dt: f64, event: E) {
        self.assert_delay(dt);
        self.queue.schedule_fast(self.now + dt, event);
    }

    #[inline]
    fn assert_future(&self, at: SimTime) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
    }

    #[inline]
    fn assert_delay(&self, dt: f64) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "delay must be finite and non-negative, got {dt}"
        );
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Sets the event queue's order-fuzz seed (see
    /// [`EventQueue::set_order_fuzz`]): 0 keeps exact FIFO order among
    /// simultaneous events, any other value replaces it with a seeded
    /// deterministic permutation. Call before seeding initial events for
    /// a whole-run permutation.
    pub fn set_order_fuzz(&mut self, seed: u64) {
        self.queue.set_order_fuzz(seed);
    }

    /// Asks the engine to stop after the current event completes.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of events pending in the future-event list.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of events handled so far.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }
}

impl<E> fmt::Debug for Context<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("handled", &self.events_handled)
            .finish()
    }
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list drained.
    Exhausted,
    /// The model called [`Context::stop`].
    Stopped,
    /// The time horizon given to [`Engine::run_until`] was reached.
    HorizonReached,
    /// The event budget given to [`Engine::run_events`] was exhausted.
    BudgetExhausted,
}

/// Summary of a completed run loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Why the loop returned.
    pub reason: StopReason,
    /// The clock value when the loop returned.
    pub end_time: SimTime,
    /// Total events handled during this call.
    pub events: u64,
}

/// The discrete-event engine: owns the model and the [`Context`].
///
/// # Examples
///
/// See the [crate-level example](crate).
pub struct Engine<S: Simulation> {
    model: S,
    ctx: Context<S::Event>,
}

impl<S: Simulation> Engine<S> {
    /// Creates an engine around `model` with an empty event list at `t = 0`.
    pub fn new(model: S) -> Engine<S> {
        Engine {
            model,
            ctx: Context::new(),
        }
    }

    /// Borrows the model.
    pub fn model(&self) -> &S {
        &self.model
    }

    /// Mutably borrows the model.
    pub fn model_mut(&mut self) -> &mut S {
        &mut self.model
    }

    /// Borrows the context (clock + event list).
    pub fn context(&self) -> &Context<S::Event> {
        &self.ctx
    }

    /// Mutably borrows the context, e.g. to seed initial events.
    pub fn context_mut(&mut self) -> &mut Context<S::Event> {
        &mut self.ctx
    }

    /// Consumes the engine, returning the model (e.g. to read final state).
    pub fn into_model(self) -> S {
        self.model
    }

    /// Handles exactly one event. Returns `false` if none was pending or a
    /// stop was requested.
    pub fn step(&mut self) -> bool {
        if self.ctx.stop_requested {
            return false;
        }
        match self.ctx.queue.pop() {
            Some(scheduled) => {
                debug_assert!(scheduled.time >= self.ctx.now, "event list went backwards");
                self.ctx.now = scheduled.time;
                self.ctx.events_handled += 1;
                self.model.handle(&mut self.ctx, scheduled.event);
                true
            }
            None => false,
        }
    }

    /// Runs until the event list drains or the model stops.
    pub fn run(&mut self) -> RunReport {
        let start_events = self.ctx.events_handled;
        while self.step() {}
        self.report(start_events, None)
    }

    /// Runs until `horizon` (inclusive of events at exactly `horizon`),
    /// the event list drains, or the model stops. The clock is left at the
    /// later of its current value and `horizon` when the horizon is the
    /// binding constraint.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        let start_events = self.ctx.events_handled;
        loop {
            if self.ctx.stop_requested {
                return self.report(start_events, None);
            }
            // Single heap access per event: pop-if-due instead of
            // peek-then-pop.
            match self.ctx.queue.pop_at_or_before(horizon) {
                Some(scheduled) => {
                    debug_assert!(scheduled.time >= self.ctx.now, "event list went backwards");
                    self.ctx.now = scheduled.time;
                    self.ctx.events_handled += 1;
                    self.model.handle(&mut self.ctx, scheduled.event);
                }
                None => {
                    if self.ctx.now < horizon {
                        self.ctx.now = horizon;
                    }
                    return self.report(start_events, Some(StopReason::HorizonReached));
                }
            }
        }
    }

    /// Runs at most `budget` events.
    pub fn run_events(&mut self, budget: u64) -> RunReport {
        let start_events = self.ctx.events_handled;
        for _ in 0..budget {
            if !self.step() {
                return self.report(start_events, None);
            }
        }
        self.report(start_events, Some(StopReason::BudgetExhausted))
    }

    fn report(&self, start_events: u64, forced: Option<StopReason>) -> RunReport {
        let reason = if self.ctx.stop_requested {
            StopReason::Stopped
        } else if let Some(r) = forced {
            r
        } else {
            StopReason::Exhausted
        };
        RunReport {
            reason,
            end_time: self.ctx.now,
            events: self.ctx.events_handled - start_events,
        }
    }
}

impl<S: Simulation + fmt::Debug> fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("model", &self.model)
            .field("ctx", &self.ctx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Ticker {
        ticks: u32,
        limit: u32,
    }

    #[derive(Debug)]
    struct Tick;

    impl Simulation for Ticker {
        type Event = Tick;
        fn handle(&mut self, ctx: &mut Context<Tick>, _: Tick) {
            self.ticks += 1;
            if self.ticks < self.limit {
                ctx.schedule_in(1.0, Tick);
            }
        }
    }

    fn ticker(limit: u32) -> Engine<Ticker> {
        let mut e = Engine::new(Ticker { ticks: 0, limit });
        e.context_mut().schedule_at(SimTime::ZERO, Tick);
        e
    }

    #[test]
    fn run_drains_queue() {
        let mut e = ticker(5);
        let report = e.run();
        assert_eq!(report.reason, StopReason::Exhausted);
        assert_eq!(e.model().ticks, 5);
        assert_eq!(report.events, 5);
        assert_eq!(report.end_time, SimTime::from(4.0));
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock() {
        let mut e = ticker(100);
        let report = e.run_until(SimTime::from(2.5));
        assert_eq!(report.reason, StopReason::HorizonReached);
        // Events at t = 0, 1, 2 fire; the next would be at 3.0 > 2.5.
        assert_eq!(e.model().ticks, 3);
        assert_eq!(e.context().now(), SimTime::from(2.5));
        // Continuing picks up where we left off.
        let report = e.run();
        assert_eq!(report.reason, StopReason::Exhausted);
        assert_eq!(e.model().ticks, 100);
    }

    #[test]
    fn run_events_respects_budget() {
        let mut e = ticker(100);
        let report = e.run_events(10);
        assert_eq!(report.reason, StopReason::BudgetExhausted);
        assert_eq!(e.model().ticks, 10);
    }

    #[test]
    fn stop_request_halts_loop() {
        #[derive(Debug)]
        struct Stopper;
        impl Simulation for Stopper {
            type Event = u32;
            fn handle(&mut self, ctx: &mut Context<u32>, n: u32) {
                if n >= 3 {
                    ctx.stop();
                } else {
                    ctx.schedule_in(1.0, n + 1);
                }
            }
        }
        let mut e = Engine::new(Stopper);
        e.context_mut().schedule_at(SimTime::ZERO, 0);
        let report = e.run();
        assert_eq!(report.reason, StopReason::Stopped);
        assert_eq!(report.end_time, SimTime::from(3.0));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut e = ticker(2);
        e.run();
        e.context_mut().schedule_at(SimTime::ZERO, Tick);
    }

    #[test]
    fn into_model_returns_state() {
        let mut e = ticker(2);
        e.run();
        assert_eq!(e.into_model().ticks, 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_delay_panics() {
        let mut e = ticker(1);
        e.context_mut().schedule_in(f64::NAN, Tick);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_delay_panics() {
        let mut e = ticker(1);
        e.context_mut().schedule_in(f64::INFINITY, Tick);
    }

    #[test]
    fn fast_path_drives_the_loop_like_the_slow_path() {
        #[derive(Debug, Default)]
        struct FastTicker {
            ticks: u32,
        }
        impl Simulation for FastTicker {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<()>, (): ()) {
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.schedule_fast_in(1.0, ());
                }
            }
        }
        let mut e = Engine::new(FastTicker::default());
        e.context_mut().schedule_fast_at(SimTime::ZERO, ());
        let report = e.run();
        assert_eq!(report.reason, StopReason::Exhausted);
        assert_eq!(e.model().ticks, 5);
        assert_eq!(report.end_time, SimTime::from(4.0));
    }

    #[test]
    fn events_handled_accumulates_across_calls() {
        let mut e = ticker(10);
        e.run_events(4);
        e.run();
        assert_eq!(e.context().events_handled(), 10);
    }
}
