//! # sda — Subtask Deadline Assignment in Distributed Soft Real-Time Systems
//!
//! A complete, from-scratch reproduction of Ben Kao and Hector
//! Garcia-Molina, *Deadline Assignment in a Distributed Soft Real-Time
//! System* (ICDCS 1993; extended version in IEEE TPDS 8(12), 1997).
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`core`] — the paper's contribution: the task model and the SSP
//!   (UD/ED/EQS/EQF), PSP (UD/DIV-x/GF) and combined deadline-assignment
//!   strategies;
//! * [`sim`] — a deterministic discrete-event simulation engine
//!   (the DeNet substitute);
//! * [`sched`] — non-preemptive local schedulers (EDF, FCFS, SJF, MLF,
//!   class-priority);
//! * [`workload`] — the paper's stochastic workload model
//!   (Poisson streams, exponential service, uniform slack, serial-parallel
//!   task trees);
//! * [`system`] — the distributed system model: independent per-node
//!   schedulers plus the process manager, with miss-ratio metrics;
//! * [`analytic`] — closed-form M/M/c and Allen–Cunneen G/G/c
//!   predictors that cross-validate the simulator and screen sweep
//!   grids analytically;
//! * [`service`] — a live thread-per-worker runtime driving the same
//!   assignment strategies on a wall clock, with the simulator as its
//!   deterministic test double;
//! * [`experiments`] — the harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! Assign virtual deadlines to a 4-stage serial task under EQF:
//!
//! ```
//! use sda::core::{SerialStrategy, SspInput};
//!
//! // A global task arriving at t=0 with end-to-end deadline 20, whose 4
//! // subtasks have predicted execution times 2, 4, 1, 3.
//! let strategy = SerialStrategy::EqualFlexibility;
//! let dl = strategy.deadline(&SspInput {
//!     submit_time: 0.0,
//!     global_deadline: 20.0,
//!     pex_current: 2.0,
//!     pex_remaining_after: &[4.0, 1.0, 3.0],
//!     comm_current: 0.0,
//!     comm_after: 0.0,
//!     slack_scale: 1.0,
//! });
//! // Total pex = 10, total slack = 10, so stage 1 (pex 2) gets flexibility
//! // 1.0: dl = 0 + 2 + 10·(2/10) = 4.
//! assert!((dl - 4.0).abs() < 1e-12);
//! ```
//!
//! Run a small end-to-end simulation of the paper's baseline and compare
//! UD against EQF (see `examples/quickstart.rs` for the full program).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use sda_analytic as analytic;
pub use sda_core as core;
pub use sda_experiments as experiments;
pub use sda_sched as sched;
pub use sda_service as service;
pub use sda_sim as sim;
pub use sda_system as system;
pub use sda_workload as workload;
