//! Exercises the `sda` meta-crate's re-exported API surface end to end:
//! everything a downstream user would touch must be reachable from the
//! facade.

use sda::core::{
    Completion, NodeId, ParallelStrategy, SdaStrategy, SerialStrategy, SspInput, TaskRun, TaskSpec,
};
use sda::sched::{Job, Policy, ReadyQueue};
use sda::sim::dist::{Dist, Exponential};
use sda::sim::rng::RngFactory;
use sda::sim::stats::{Replications, Tally};
use sda::sim::SimTime;
use sda::workload::{GlobalShape, TaskFactory, WorkloadConfig};

#[test]
fn facade_covers_the_full_pipeline() {
    // 1. Define a task structure.
    let spec = TaskSpec::serial(vec![
        TaskSpec::simple(NodeId::new(0), 1.0, 1.0),
        TaskSpec::parallel(vec![
            TaskSpec::simple(NodeId::new(1), 2.0, 2.0),
            TaskSpec::simple(NodeId::new(2), 2.0, 2.0),
        ]),
    ]);
    assert!(spec.validate().is_ok());

    // 2. Assign deadlines with the combined strategy.
    let strategy = SdaStrategy::new(
        SerialStrategy::EqualFlexibility,
        ParallelStrategy::div(1.0).unwrap(),
    );
    let mut run = TaskRun::new(&spec, 0.0, 9.0).unwrap();
    let first = run.start(&strategy, 0.0);
    assert_eq!(first.len(), 1);

    // 3. Feed a scheduler queue.
    let mut queue = ReadyQueue::new(Policy::EarliestDeadlineFirst);
    for sub in &first {
        queue.push(Job::global(
            sda::core::TaskId::new(1),
            sub.subtask,
            0.0,
            sub.ex,
            sub.pex,
            sub.deadline,
            sub.priority,
        ));
    }
    let job = queue.pop().unwrap();

    // 4. Complete and advance precedence.
    match run.complete(
        match job.origin {
            sda::sched::JobOrigin::Global { subtask, .. } => subtask,
            _ => unreachable!(),
        },
        &strategy,
        1.0,
    ) {
        Completion::Submitted(next) => assert_eq!(next.len(), 2),
        Completion::Finished => panic!("two parallel branches remain"),
    }
}

#[test]
fn facade_reaches_sim_substrate() {
    let factory = RngFactory::new(5);
    let mut stream = factory.stream("facade");
    let exp = Exponential::with_mean(2.0).unwrap();
    let tally: Tally = (0..1_000).map(|_| exp.sample(&mut stream)).collect();
    assert!(tally.mean() > 1.0 && tally.mean() < 3.0);
    assert!(SimTime::from(1.0) < SimTime::from(2.0));
    let reps: Replications = [1.0, 2.0, 3.0].into_iter().collect();
    assert_eq!(reps.mean(), 2.0);
}

#[test]
fn facade_reaches_workload_generator() {
    let cfg = WorkloadConfig {
        shape: GlobalShape::Parallel { m: 3 },
        slack: sda::workload::SlackRange::PSP_BASELINE,
        ..WorkloadConfig::baseline()
    };
    let mut factory = TaskFactory::new(cfg, &RngFactory::new(9)).unwrap();
    let g = factory.make_global(0.0);
    assert!(g.spec.is_flat_parallel());
    assert!(g.deadline > 0.0);
}

#[test]
fn ssp_formula_reachable_from_facade() {
    let dl = SerialStrategy::EffectiveDeadline.deadline(&SspInput {
        submit_time: 0.0,
        global_deadline: 10.0,
        pex_current: 1.0,
        pex_remaining_after: &[2.0],
        comm_current: 0.0,
        comm_after: 0.0,
        slack_scale: 1.0,
    });
    assert_eq!(dl, 8.0);
}
