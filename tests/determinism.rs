//! End-to-end determinism and common-random-numbers guarantees across
//! the whole stack (workload → system → metrics).
//!
//! The `pins` module at the bottom names every public config enum
//! variant in a seeded run; the `golden-coverage` pass of
//! `sda-analysis` fails CI when a variant stops being exercised here
//! or in any other test under `tests/`.

use sda::core::SdaStrategy;
use sda::system::{
    run_once, run_replications, FailureModel, NetworkModel, OverloadPolicy, RunConfig, SystemConfig,
};
use sda::workload::{ArrivalProcess, GlobalShape, PhaseSegment};

#[test]
fn identical_seeds_give_identical_runs() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let run = RunConfig {
        warmup: 500.0,
        duration: 10_000.0,
        seed: 12345,
        order_fuzz: 0,
    };
    let a = run_once(&cfg, &run).unwrap();
    let b = run_once(&cfg, &run).unwrap();
    assert_eq!(a, b, "bit-identical results expected for equal seeds");
}

#[test]
fn different_seeds_give_different_runs() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let mk = |seed| {
        run_once(
            &cfg,
            &RunConfig {
                warmup: 500.0,
                duration: 10_000.0,
                seed,
                order_fuzz: 0,
            },
        )
        .unwrap()
    };
    assert_ne!(mk(1), mk(2));
}

#[test]
fn strategies_see_the_same_workload_sample() {
    // Common random numbers: the task streams derive from named RNG
    // streams independent of the strategy, so two strategies at the same
    // seed face exactly the same arrivals — the paper's paired-comparison
    // setup. The *total* number of tasks that entered the system over an
    // identical horizon must therefore agree up to edge effects at the
    // horizon (tasks still in flight).
    let run = RunConfig {
        warmup: 500.0,
        duration: 20_000.0,
        seed: 777,
        order_fuzz: 0,
    };
    let ud = run_once(&SystemConfig::ssp_baseline(SdaStrategy::ud_ud()), &run).unwrap();
    let eqf = run_once(&SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), &run).unwrap();
    let locals_ud = ud.metrics.local.completed() as f64;
    let locals_eqf = eqf.metrics.local.completed() as f64;
    assert!(
        (locals_ud - locals_eqf).abs() / locals_ud < 0.01,
        "local completions should match to <1%: {locals_ud} vs {locals_eqf}"
    );
    let globals_ud = ud.metrics.global.completed() as f64;
    let globals_eqf = eqf.metrics.global.completed() as f64;
    assert!(
        (globals_ud - globals_eqf).abs() / globals_ud < 0.05,
        "global completions should be close: {globals_ud} vs {globals_eqf}"
    );
}

#[test]
fn replication_seeds_are_stable() {
    let cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    let base = RunConfig {
        warmup: 500.0,
        duration: 5_000.0,
        seed: 31337,
        order_fuzz: 0,
    };
    let a = run_replications(&cfg, &base, 3).unwrap();
    let b = run_replications(&cfg, &base, 3).unwrap();
    assert_eq!(a.global_miss_pct.values(), b.global_miss_pct.values());
    assert_eq!(a.runs, b.runs);
}

/// Seeded same-seed-reproducibility pins for config-enum variants not
/// exercised by the golden fingerprints: each variant must at minimum
/// run, produce work, and replay bit-identically.
mod pins {
    use super::*;

    fn pin_run(cfg: &SystemConfig) {
        let run = RunConfig {
            warmup: 200.0,
            duration: 4_000.0,
            seed: 0xC0FFEE,
            order_fuzz: 0,
        };
        let a = run_once(cfg, &run).unwrap();
        let b = run_once(cfg, &run).unwrap();
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(
            a.metrics.global.completed() > 0,
            "the pinned variant must actually produce completed tasks"
        );
    }

    #[test]
    fn serial_shape_replays() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.shape = GlobalShape::Serial { m: 4 };
        pin_run(&cfg);
    }

    #[test]
    fn serial_random_m_shape_replays() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.shape = GlobalShape::SerialRandomM { min_m: 2, max_m: 6 };
        pin_run(&cfg);
    }

    #[test]
    fn serial_parallel_shape_replays() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_div1());
        cfg.workload.shape = GlobalShape::SerialParallel {
            stages: 3,
            branches: 2,
        };
        pin_run(&cfg);
    }

    #[test]
    fn phased_arrivals_replay() {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.workload.arrivals = ArrivalProcess::Phased {
            segments: vec![PhaseSegment::new(300.0, 1.0), PhaseSegment::new(100.0, 2.0)],
        };
        pin_run(&cfg);
    }

    #[test]
    fn explicit_defaults_replay() {
        // The defaults the goldens rely on implicitly, spelled out:
        // delay-free network, immortal fleet, soft deadlines.
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
        cfg.network = NetworkModel::Zero;
        cfg.failure = FailureModel::None;
        cfg.overload = OverloadPolicy::NoAbort;
        pin_run(&cfg);
    }
}
