//! End-to-end determinism and common-random-numbers guarantees across
//! the whole stack (workload → system → metrics).

use sda::core::SdaStrategy;
use sda::system::{run_once, run_replications, RunConfig, SystemConfig};

#[test]
fn identical_seeds_give_identical_runs() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let run = RunConfig {
        warmup: 500.0,
        duration: 10_000.0,
        seed: 12345,
        order_fuzz: 0,
    };
    let a = run_once(&cfg, &run).unwrap();
    let b = run_once(&cfg, &run).unwrap();
    assert_eq!(a, b, "bit-identical results expected for equal seeds");
}

#[test]
fn different_seeds_give_different_runs() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let mk = |seed| {
        run_once(
            &cfg,
            &RunConfig {
                warmup: 500.0,
                duration: 10_000.0,
                seed,
                order_fuzz: 0,
            },
        )
        .unwrap()
    };
    assert_ne!(mk(1), mk(2));
}

#[test]
fn strategies_see_the_same_workload_sample() {
    // Common random numbers: the task streams derive from named RNG
    // streams independent of the strategy, so two strategies at the same
    // seed face exactly the same arrivals — the paper's paired-comparison
    // setup. The *total* number of tasks that entered the system over an
    // identical horizon must therefore agree up to edge effects at the
    // horizon (tasks still in flight).
    let run = RunConfig {
        warmup: 500.0,
        duration: 20_000.0,
        seed: 777,
        order_fuzz: 0,
    };
    let ud = run_once(&SystemConfig::ssp_baseline(SdaStrategy::ud_ud()), &run).unwrap();
    let eqf = run_once(&SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()), &run).unwrap();
    let locals_ud = ud.metrics.local.completed() as f64;
    let locals_eqf = eqf.metrics.local.completed() as f64;
    assert!(
        (locals_ud - locals_eqf).abs() / locals_ud < 0.01,
        "local completions should match to <1%: {locals_ud} vs {locals_eqf}"
    );
    let globals_ud = ud.metrics.global.completed() as f64;
    let globals_eqf = eqf.metrics.global.completed() as f64;
    assert!(
        (globals_ud - globals_eqf).abs() / globals_ud < 0.05,
        "global completions should be close: {globals_ud} vs {globals_eqf}"
    );
}

#[test]
fn replication_seeds_are_stable() {
    let cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    let base = RunConfig {
        warmup: 500.0,
        duration: 5_000.0,
        seed: 31337,
        order_fuzz: 0,
    };
    let a = run_replications(&cfg, &base, 3).unwrap();
    let b = run_replications(&cfg, &base, 3).unwrap();
    assert_eq!(a.global_miss_pct.values(), b.global_miss_pct.values());
    assert_eq!(a.runs, b.runs);
}
