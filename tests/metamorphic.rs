//! Metamorphic relations: transformations of a `SystemConfig` whose
//! effect on the metrics is known *a priori* — rescaling every time
//! unit, permuting node labels, splitting one task class into two
//! equivalent half-rate classes. Each relation is checked on the serial
//! engine and pinned against the sharded conservative-parallel engine,
//! so a violation localizes to either the model or an engine.

use sda::core::SdaStrategy;
use sda::sched::Policy;
use sda::system::{
    run_once, run_once_sharded, run_replications, NetworkModel, RunConfig, RunResult, SystemConfig,
};
use sda::workload::{GlobalShape, SlackRange};

/// Runs serially, pins the sharded engine against it, returns the run.
fn run_pinned(cfg: &SystemConfig, run: &RunConfig) -> RunResult {
    let serial = run_once(cfg, run).unwrap();
    let sharded = run_once_sharded(cfg, run, 3).unwrap();
    assert_eq!(serial, sharded, "sharded engine diverged from serial");
    serial
}

/// Scaling every quantity with time dimension by a power of two — task
/// execution means, slack ranges, network delays, warm-up and horizon —
/// multiplies all exponential/uniform draws by exactly that power
/// (binary floating point: a pure exponent shift), so the event order,
/// every deadline decision, and thus all counts and ratios are
/// *bit-identical*; response times are exactly doubled.
#[test]
fn time_unit_rescaling_is_exact() {
    const C: f64 = 2.0;
    let mut base = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    base.workload.load = 0.7;
    base.network = NetworkModel::Constant { delay: 0.5 };

    let mut scaled = base.clone();
    scaled.workload.mean_local_ex *= C;
    scaled.workload.mean_subtask_ex *= C;
    scaled.workload.slack =
        SlackRange::new(base.workload.slack.min * C, base.workload.slack.max * C);
    scaled.network = NetworkModel::Constant { delay: 0.5 * C };

    let run = RunConfig {
        warmup: 1_000.0,
        duration: 12_000.0,
        seed: 0x5CA1E,
        order_fuzz: 0,
    };
    let run_scaled = RunConfig {
        warmup: run.warmup * C,
        duration: run.duration * C,
        ..run
    };

    let a = run_pinned(&base, &run);
    let b = run_pinned(&scaled, &run_scaled);

    // Same tasks, same decisions: counts and miss ratios are identical
    // to the bit.
    assert_eq!(a.events, b.events);
    for (ca, cb, class) in [
        (&a.metrics.local, &b.metrics.local, "local"),
        (&a.metrics.global, &b.metrics.global, "global"),
    ] {
        assert_eq!(ca.completed(), cb.completed(), "{class} completions");
        assert_eq!(ca.missed(), cb.missed(), "{class} misses");
        assert_eq!(
            ca.miss_percent().to_bits(),
            cb.miss_percent().to_bits(),
            "{class} miss % must be bit-identical"
        );
        // Times are exactly doubled.
        assert_eq!(
            (C * ca.response().mean()).to_bits(),
            cb.response().mean().to_bits(),
            "{class} response must scale exactly by {C}"
        );
    }
    // Dimensionless time-averages are bit-identical too.
    assert_eq!(
        a.mean_utilization().to_bits(),
        b.mean_utilization().to_bits()
    );
    for (qa, qb) in a.node_queue_length.iter().zip(&b.node_queue_length) {
        assert_eq!(qa.to_bits(), qb.to_bits());
    }
}

/// Spelling the default uniform workload out explicitly — unit weights,
/// unit speeds — must not change a single bit: the per-node rate
/// `total · 1/6` equals the default rate exactly in binary.
#[test]
fn explicit_uniform_weights_and_speeds_are_the_identity() {
    let base = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    let mut explicit = base.clone();
    explicit.workload.local_weights = Some(vec![1.0; 6]);
    explicit.workload.node_speeds = Some(vec![1.0; 6]);

    let run = RunConfig {
        warmup: 500.0,
        duration: 8_000.0,
        seed: 0xD0_5EED,
        order_fuzz: 0,
    };
    assert_eq!(run_pinned(&base, &run), run_pinned(&explicit, &run));
}

/// Permuting which node carries the heavy local stream must not move
/// the aggregate metrics (uniform speeds, uniform subtask placement):
/// node labels carry no physics. Per-node RNG streams differ, so this
/// is a statistical check: replication CIs must overlap.
#[test]
fn node_label_permutation_preserves_aggregates() {
    let mk = |weights: Vec<f64>| {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
        cfg.workload.local_weights = Some(weights);
        cfg
    };
    let a_cfg = mk(vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
    let b_cfg = mk(vec![1.0, 1.0, 1.0, 3.0, 1.0, 1.0]);
    let run = RunConfig {
        warmup: 1_000.0,
        duration: 20_000.0,
        seed: 0x9E57,
        order_fuzz: 0,
    };
    let a = run_replications(&a_cfg, &run, 5).unwrap();
    let b = run_replications(&b_cfg, &run, 5).unwrap();
    for (ra, rb, what) in [
        (&a.local_miss_pct, &b.local_miss_pct, "local miss %"),
        (&a.global_miss_pct, &b.global_miss_pct, "global miss %"),
        (&a.utilization, &b.utilization, "utilization"),
    ] {
        let ca = ra.confidence_interval().unwrap();
        let cb = rb.confidence_interval().unwrap();
        assert!(
            (ca.mean - cb.mean).abs() <= ca.half_width + cb.half_width,
            "{what}: permuted CIs disjoint — {:.3}±{:.3} vs {:.3}±{:.3}",
            ca.mean,
            ca.half_width,
            cb.mean,
            cb.half_width
        );
    }
    // The permutation itself must matter somewhere: the heavy node
    // moved, so per-node utilizations are permuted, not identical.
    let ua = run_pinned(&a_cfg, &run).node_utilization;
    let ub = run_pinned(&b_cfg, &run).node_utilization;
    assert!(ua[0] > ua[1] && ub[3] > ub[1], "heavy node misplaced");
}

/// Splitting one task stream into two equivalent half-rate classes —
/// locals at half load plus single-stage "global" tasks whose deadline
/// law (`dl = ar + ex + u`, `u ~ U[slack]` at `rel_flex = 1`,
/// `mean_subtask_ex = mean_local_ex`) matches the locals' exactly —
/// must leave the pooled miss ratio and utilization unchanged.
#[test]
fn class_duplication_preserves_pooled_metrics() {
    let mut whole = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    whole.workload.nodes = 1;
    whole.workload.frac_local = 1.0;
    whole.workload.load = 0.6;
    whole.policy = Policy::Fcfs;

    let mut split = whole.clone();
    split.workload.frac_local = 0.5;
    split.workload.shape = GlobalShape::Serial { m: 1 };
    split.workload.mean_subtask_ex = split.workload.mean_local_ex;
    split.workload.rel_flex = 1.0;

    let run = RunConfig {
        warmup: 1_000.0,
        duration: 20_000.0,
        seed: 0x5711,
        order_fuzz: 0,
    };
    let reps = 6;
    let a = run_replications(&whole, &run, reps).unwrap();
    let b = run_replications(&split, &run, reps).unwrap();

    // Pooled miss % of the split system, per replication.
    let pooled: sda::sim::stats::Replications = b
        .runs
        .iter()
        .map(|r| {
            let missed = r.metrics.local.missed() + r.metrics.global.missed();
            let done = r.metrics.local.completed() + r.metrics.global.completed();
            100.0 * missed as f64 / done as f64
        })
        .collect();
    let ca = a.local_miss_pct.confidence_interval().unwrap();
    let cb = pooled.confidence_interval().unwrap();
    assert!(
        (ca.mean - cb.mean).abs() <= ca.half_width + cb.half_width,
        "pooled miss diverged: whole {:.2}±{:.2} vs split {:.2}±{:.2}",
        ca.mean,
        ca.half_width,
        cb.mean,
        cb.half_width
    );
    let ua = a.utilization.confidence_interval().unwrap();
    let ub = b.utilization.confidence_interval().unwrap();
    assert!(
        (ua.mean - ub.mean).abs() <= ua.half_width + ub.half_width,
        "utilization diverged: {:.3}±{:.3} vs {:.3}±{:.3}",
        ua.mean,
        ua.half_width,
        ub.mean,
        ub.half_width
    );
    // Both engines agree on the split config too (zero network → the
    // sharded entry point falls back to the identical serial path).
    run_pinned(&split, &run);
}
