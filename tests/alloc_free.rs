//! Proof that the steady-state simulation loop is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! settling period past warm-up (during which slabs, ready queues, event
//! heaps, the task pool and the stats buffers reach their working
//! capacity), the measured window must perform (amortized) **zero** heap
//! allocations per simulated event: every arrival, dispatch, preemption,
//! completion and abort runs on recycled storage.
//!
//! The assertion allows a small absolute number of allocations per
//! window (≤ 64 over hundreds of thousands of events) because slabs may
//! still double once if a random-walk queue depth sets a new high-water
//! mark after settling; that is still zero per event, amortized.
//!
//! This test lives in its own integration-test binary so no concurrently
//! running test can pollute the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation verbatim to the system allocator;
// the counter uses a relaxed atomic and allocates nothing itself.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

use sda::core::{AdaptiveSlack, SdaStrategy};
use sda::sim::{Engine, SimTime};
use sda::system::{run_once_sharded, Event, NetworkModel, RunConfig, SystemConfig, SystemModel};
use sda::workload::{ArrivalProcess, GlobalShape, SlackRange};

/// Runs one simulation and returns `(allocations, events)` over the
/// post-settling measurement window `[settle_until, horizon]`.
fn measure_window(cfg: SystemConfig, settle_until: f64, horizon: f64) -> (u64, u64) {
    let rng = sda::sim::rng::RngFactory::new(0xA110C);
    let model = SystemModel::new(cfg, &rng).expect("valid config");
    let mut engine = Engine::new(model);
    engine
        .context_mut()
        .schedule_at(SimTime::ZERO, Event::Init { warmup_end: 500.0 });

    // Warm-up + settling: statistics reset at t = 500 (which itself
    // allocates fresh quantile estimators once), then capacities grow to
    // their working set until `settle_until`.
    engine.run_until(SimTime::from(settle_until));

    let events_before = engine.context().events_handled();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    engine.run_until(SimTime::from(horizon));
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let events = engine.context().events_handled() - events_before;
    (allocs, events)
}

/// The original ρ = 0.9 EDF scenario.
fn measure(preemptive: bool) -> (u64, u64) {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.preemptive = preemptive;
    measure_window(cfg, 3_000.0, 12_000.0)
}

#[test]
fn steady_state_is_allocation_free_per_event() {
    for preemptive in [false, true] {
        let (allocs, events) = measure(preemptive);
        assert!(
            events > 50_000,
            "measurement window too small: {events} events (preemptive={preemptive})"
        );
        // Amortized zero per event: allow only stray capacity doublings.
        assert!(
            allocs <= 64,
            "steady state allocated {allocs} times over {events} events \
             (preemptive={preemptive}) — the hot path regressed to \
             per-event allocation"
        );
    }
}

#[test]
fn dag_workload_steady_state_is_allocation_free_per_event() {
    // The DAG-structured task path: every arrival fills a pooled
    // `DagRun` (random layered structure, CSR edge lists, reverse-topo
    // critical-path pass), every completion counts down fan-in
    // in-degrees and may release a multi-node wave. All of it runs on
    // recycled storage — node/edge/CSR/scratch vectors retain capacity
    // across tasks, and the per-task structure is bounded (depth 4,
    // width ≤ 3), so the stationary absolute cap applies.
    //
    // The settling period is longer than the flat scenarios': a fresh
    // task-slab slot's `DagRun` grows ~17 vectors from empty (vs ~6 for
    // a `FlatRun`), so each in-flight high-water-mark record costs ~3×
    // the one-time allocations, and the random-walk population needs
    // more time before new records become rare enough for the absolute
    // cap.
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_div1());
    cfg.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.load = 0.85;
    let (allocs, events) = measure_window(cfg, 20_000.0, 29_000.0);
    assert!(
        events > 50_000,
        "measurement window too small: {events} events"
    );
    assert!(
        allocs <= 64,
        "DAG steady state allocated {allocs} times over {events} events — \
         the DAG task lifecycle regressed to per-event allocation"
    );
}

#[test]
fn sharded_engine_steady_state_is_allocation_free_per_window() {
    // The sharded conservative-parallel engine adds per-window machinery
    // on top of the serial hot path: mailbox drains, record pushes, the
    // manager's merge sort and the sequencer's k-way merge. All of it
    // runs on pre-reserved storage (fixed-capacity mailboxes, reusable
    // drain/record buffers, a retained-capacity sequencer heap), so the
    // *steady-state* allocation rate must be amortized zero per window.
    //
    // The sharded entry point spawns its shard threads per run, so the
    // one-time setup cannot be excluded by a settling horizon like the
    // serial scenarios above. Instead, measure two runs that differ only
    // in duration: the setup cost (model build, threads, mailboxes,
    // working-set growth) is identical, so the short→long delta isolates
    // the steady-state loop over the extra ~9 000 windows.
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.network = NetworkModel::Constant { delay: 1.0 };
    let measure = |duration: f64| {
        let run = RunConfig {
            warmup: 500.0,
            duration,
            seed: 0xA110C,
            order_fuzz: 0,
        };
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let result = run_once_sharded(&cfg, &run, 2).expect("valid config");
        (ALLOCATIONS.load(Ordering::Relaxed) - before, result.events)
    };
    let (short_allocs, short_events) = measure(3_000.0);
    let (long_allocs, long_events) = measure(12_000.0);
    let events = long_events - short_events;
    let allocs = long_allocs.saturating_sub(short_allocs);
    assert!(
        events > 50_000,
        "measurement window too small: {events} extra events"
    );
    // ~9 000 extra windows: one allocation per window would already be
    // ~6% of the extra events, well over this 2% budget. Healthy value:
    // a handful of late capacity doublings.
    assert!(
        allocs * 50 <= events,
        "sharded steady state allocated {allocs} times over {events} extra \
         events — a per-window allocation crept into the engine"
    );
}

#[test]
fn churn_steady_state_is_allocation_free_per_event() {
    // The fault-injection surface: exponential crash/repair churn on
    // pipelines over a constant-delay network. Every crash purges a
    // node's queue into a recycled loss buffer, bumps the epoch, and
    // re-dispatches the in-flight casualties through the pooled
    // `reissue` path — all on retained storage. Crashes keep (rarely)
    // breaking queue high-water marks on the surviving nodes (each
    // outage concentrates the load on fewer servers), so assert a
    // strict rate bound like the MMPP scenario rather than the
    // stationary absolute cap.
    use sda::system::FailureModel;
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.7;
    cfg.network = NetworkModel::Constant { delay: 0.5 };
    cfg.failure = FailureModel::Exponential {
        mttf: 400.0,
        mttr: 50.0,
    };
    let (allocs, events) = measure_window(cfg, 12_000.0, 24_000.0);
    assert!(
        events > 50_000,
        "measurement window too small: {events} events"
    );
    assert!(
        allocs * 250 <= events,
        "churn steady state allocated {allocs} times over {events} events — \
         the crash/re-dispatch path regressed toward per-event allocation"
    );
}

#[test]
fn mmpp_adaptive_steady_state_is_allocation_free_per_event() {
    // The time-varying-workload surface: MMPP-modulated arrivals, the
    // feedback EWMA updating on every completion, and ADAPT(EQF-DIV1)
    // re-stamping the slack scale at every stage activation. The MMPP
    // phase machine and the feedback loop are plain scalar state, so
    // steady state must stay allocation-free. Burst phases also grow the
    // queues well past the stationary working set, exercising slab
    // re-use under a bigger high-water mark.
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    cfg.workload.load = 0.8;
    cfg.workload.arrivals = ArrivalProcess::Mmpp2 {
        burst_ratio: 4.0,
        dwell_quiet: 300.0,
        dwell_burst: 100.0,
    };
    let (allocs, events) = measure_window(cfg, 12_000.0, 24_000.0);
    assert!(
        events > 50_000,
        "measurement window too small: {events} events"
    );
    // Unlike the stationary scenarios, a bursty stream keeps (rarely)
    // breaking its own high-water marks: an extreme burst opens new
    // task-slab slots whose pooled `FlatRun`s grow from empty, and
    // deepens queue slabs — each record costs a handful of allocations
    // and is then retained forever. That is still amortized-zero per
    // event; assert a strict rate bound instead of the stationary
    // absolute cap. (A genuine regression to per-task allocation would
    // be ~1 allocation per ~4 events here, two orders of magnitude over
    // this budget; observed healthy value: ~1 per ~400 events.)
    assert!(
        allocs * 250 <= events,
        "MMPP + ADAPT(EQF) steady state allocated {allocs} times over \
         {events} events — the time-varying path regressed toward \
         per-event allocation"
    );
}
