//! Calibration against queueing theory: with a single node, only local
//! tasks and FCFS service, the model is an M/M/1 queue, so the measured
//! mean response time must match `E[R] = 1/(μ − λ)` and the utilization
//! must match `ρ`.
//!
//! This validates the whole substrate stack — Poisson arrivals,
//! exponential service, the event loop and the statistics — against
//! closed-form results, which is the strongest correctness check a
//! simulator can get.

use sda::core::SdaStrategy;
use sda::sched::Policy;
use sda::system::{run_once, RunConfig, SystemConfig};

fn mm1_config(rho: f64) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.workload.nodes = 1;
    cfg.workload.frac_local = 1.0; // no global tasks
    cfg.workload.load = rho;
    cfg.policy = Policy::Fcfs;
    cfg
}

#[test]
fn mm1_mean_response_time_matches_theory() {
    for rho in [0.3, 0.5, 0.7] {
        let cfg = mm1_config(rho);
        let run = RunConfig {
            warmup: 5_000.0,
            duration: 300_000.0,
            seed: 1_000 + (rho * 10.0) as u64,
            order_fuzz: 0,
        };
        let result = run_once(&cfg, &run).unwrap();
        let measured = result.metrics.local.response().mean();
        let theory = 1.0 / (1.0 - rho); // μ = 1
        let rel_err = (measured - theory).abs() / theory;
        assert!(
            rel_err < 0.05,
            "M/M/1 at ρ={rho}: measured E[R]={measured:.3}, theory {theory:.3} ({:.1}% off)",
            rel_err * 100.0
        );
    }
}

#[test]
fn mm1_utilization_matches_rho() {
    for rho in [0.2, 0.6, 0.8] {
        let cfg = mm1_config(rho);
        let run = RunConfig {
            warmup: 5_000.0,
            duration: 200_000.0,
            seed: 2_000 + (rho * 10.0) as u64,
            order_fuzz: 0,
        };
        let result = run_once(&cfg, &run).unwrap();
        let util = result.mean_utilization();
        assert!(
            (util - rho).abs() < 0.02,
            "utilization {util:.3} should be ≈ ρ = {rho}"
        );
    }
}

#[test]
fn mm1_queue_length_matches_little() {
    // Little's law on the waiting room: L_q = λ·W_q = ρ²/(1−ρ).
    let rho: f64 = 0.6;
    let cfg = mm1_config(rho);
    let run = RunConfig {
        warmup: 5_000.0,
        duration: 300_000.0,
        seed: 3_000,
        order_fuzz: 0,
    };
    let result = run_once(&cfg, &run).unwrap();
    let lq = result.node_queue_length[0];
    let theory = rho * rho / (1.0 - rho);
    let rel_err = (lq - theory).abs() / theory;
    assert!(
        rel_err < 0.08,
        "L_q measured {lq:.3} vs theory {theory:.3} ({:.1}% off)",
        rel_err * 100.0
    );
}

#[test]
fn edf_does_not_change_mm1_totals() {
    // Scheduling discipline does not change utilization or throughput of
    // a work-conserving single queue — only the order.
    let mut cfg = mm1_config(0.5);
    let run = RunConfig {
        warmup: 2_000.0,
        duration: 100_000.0,
        seed: 4_000,
        order_fuzz: 0,
    };
    let fcfs = run_once(&cfg, &run).unwrap();
    cfg.policy = Policy::EarliestDeadlineFirst;
    let edf = run_once(&cfg, &run).unwrap();
    assert_eq!(
        fcfs.metrics.local.completed(),
        edf.metrics.local.completed(),
        "same arrivals, work-conserving service → same completions"
    );
    assert!((fcfs.mean_utilization() - edf.mean_utilization()).abs() < 1e-9);
    // But EDF should miss fewer deadlines than FCFS.
    assert!(
        edf.metrics.local.miss_percent() <= fcfs.metrics.local.miss_percent(),
        "EDF ({:.2}%) should not miss more than FCFS ({:.2}%)",
        edf.metrics.local.miss_percent(),
        fcfs.metrics.local.miss_percent()
    );
}
