//! The live service's logical-clock mode against the simulator: on any
//! config the service supports (free communication, no failure
//! injection, no order fuzz), `run_logical` must be **bit-equivalent**
//! to [`run_once`] — same completions, same miss counts, same
//! utilizations, same event count.
//!
//! This is the contract that makes the simulator the service's
//! deterministic test double: anything validated against the paper in
//! the simulator is thereby validated for the live runtime's decision
//! logic.

use sda::core::{AdaptiveSlack, SdaStrategy};
use sda::service::logical::run_logical;
use sda::service::wall::{run_wall, WallRunConfig};
use sda::service::{DeadlineContract, ServiceClass, ServiceError};
use sda::system::{run_once, OverloadPolicy, RunConfig, SystemConfig};

fn quick(seed: u64) -> RunConfig {
    RunConfig::quick(seed)
}

/// Asserts bit-equivalence of the full [`RunResult`] (metrics including
/// every tally moment, per-node utilization and queue lengths, end
/// time, event count) between the service and the simulator.
fn assert_equivalent(cfg: &SystemConfig, run: &RunConfig) {
    let sim = run_once(cfg, run).expect("simulator run");
    let svc = run_logical(cfg, run).expect("service run");
    assert_eq!(
        svc.result, sim,
        "logical-clock service must be bit-equal to the simulator"
    );
}

#[test]
fn pipeline_baseline_matches_simulator_bit_for_bit() {
    // The §6 combined (pipeline-of-fans) baseline — the richest task
    // shape: stages, parallel groups, precedence waves.
    let cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_ud());
    assert_equivalent(&cfg, &quick(0x5E41));
}

#[test]
fn serial_and_parallel_baselines_match_across_strategies() {
    for strategy in [
        SdaStrategy::ud_ud(),
        SdaStrategy::eqf_ud(),
        SdaStrategy::ud_div1(),
        SdaStrategy::eqf_div1(),
    ] {
        assert_equivalent(&SystemConfig::ssp_baseline(strategy), &quick(0xA5A5));
        assert_equivalent(&SystemConfig::psp_baseline(strategy), &quick(0xA5A5));
    }
}

#[test]
fn abort_tardy_and_adaptive_slack_match_simulator() {
    // Exercise the overload-policy discard path and the ADAPT feedback
    // loop — the two places where metric-update ordering is subtlest.
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_ud(),
        AdaptiveSlack::default(),
    ));
    cfg.overload = OverloadPolicy::AbortTardy;
    assert_equivalent(&cfg, &quick(0xBEEF));
}

#[test]
fn preemptive_priority_matches_simulator() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.preemptive = true;
    assert_equivalent(&cfg, &quick(0x9E));
}

#[test]
fn qos_monitor_totals_agree_with_simulator_metrics() {
    let cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_ud());
    let run = quick(0x51);
    let sim = run_once(&cfg, &run).unwrap();
    let svc = run_logical(&cfg, &run).unwrap();
    assert_eq!(svc.qos.local.total_count, sim.metrics.local.missed());
    assert_eq!(svc.qos.global.total_count, sim.metrics.global.missed());
    assert_eq!(
        svc.qos.subtask_virtual.total_count,
        sim.metrics.subtask_virtual_miss.numerator()
    );
}

#[test]
fn wall_clock_service_drains_without_losing_tasks() {
    // A short real-time run at high time compression: every submitted
    // task must reach a terminal state before shutdown (satellite 3's
    // graceful-drain guarantee).
    let cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_ud());
    let run = RunConfig {
        warmup: 0.0,
        duration: 200.0,
        seed: 0xD12A,
        order_fuzz: 0,
    };
    let wall = WallRunConfig {
        max_globals: 50,
        ..WallRunConfig::new(&run, 2_000.0)
    };
    let report = run_wall(&cfg, &wall).expect("wall run");
    assert!(report.submitted_globals > 0, "traffic must actually flow");
    assert!(
        report.drained_clean(),
        "graceful shutdown lost {} task(s): {report:?}",
        report.lost_tasks()
    );
    let _ = ServiceClass::Local; // classes are part of the public surface
}

#[test]
fn wall_clock_service_rejects_incompatible_deadline_contracts() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let run = RunConfig {
        warmup: 0.0,
        duration: 50.0,
        seed: 1,
        order_fuzz: 0,
    };
    let mut wall = WallRunConfig::new(&run, 1_000.0);
    wall.offered = Some(DeadlineContract::new(40.0).unwrap());
    wall.requested = Some(DeadlineContract::new(25.0).unwrap());
    match run_wall(&cfg, &wall) {
        Err(ServiceError::IncompatibleContract { offered, requested }) => {
            assert_eq!(offered, 40.0);
            assert_eq!(requested, 25.0);
        }
        other => panic!("expected contract rejection, got {other:?}"),
    }
}
