//! Serial ↔ sharded engine equivalence.
//!
//! The sharded conservative-parallel engine must be *observably the same
//! simulator* as the serial event loop:
//!
//! * with zero lookahead (`NetworkModel::Zero`, `Exponential`, or a
//!   `Matrix` containing a zero entry) it falls back to the serial
//!   engine, so every golden configuration reproduces its pinned
//!   fingerprint trivially — asserted here as full-run equality;
//! * with positive lookahead (`Constant`, all-positive `Matrix`) the
//!   shards genuinely run concurrently, and the run must still be
//!   bit-identical to the serial engine and invariant across shard
//!   counts (the documented `(time, node, seq)` merge order).
//!
//! `OverloadPolicy::AbortTardy` is the one documented semantic
//! divergence (hand-offs already forwarded to a shard when their task
//! aborts are executed rather than dropped), so it is pinned as
//! shard-count-invariant only, not serial-equal.

use sda::core::{AdaptiveSlack, SdaStrategy};
use sda::sched::Policy;
use sda::system::{
    run_once, run_once_sharded, NetworkModel, OverloadPolicy, RunConfig, SystemConfig,
};
use sda::workload::{ArrivalProcess, GlobalShape, SlackRange};

fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: 300.0,
        duration: 3_000.0,
        seed,
        order_fuzz: 0,
    }
}

/// A delay matrix over `nodes + 1` endpoints with strictly positive,
/// pair-dependent entries — positive lookahead with per-pair variety.
fn positive_matrix(nodes: usize) -> NetworkModel {
    let side = nodes + 1;
    let delays = (0..side)
        .map(|i| {
            (0..side)
                .map(|j| 0.5 + 0.1 * ((i + j) % side) as f64)
                .collect()
        })
        .collect();
    NetworkModel::Matrix { delays }
}

/// The six golden configurations (see `tests/golden_metrics.rs`) all use
/// `Zero` or `Exponential` networks — zero lookahead — so the sharded
/// entry point must take the serial fallback and reproduce the pinned
/// fingerprints exactly. Asserted as full-run equality against the
/// serial engine (whose fingerprints the golden tests pin bit-for-bit).
#[test]
fn sharded_reproduces_every_golden_config_through_the_fallback() {
    let golden_run = RunConfig {
        warmup: 500.0,
        duration: 6_000.0,
        seed: 0, // overridden per config below
        order_fuzz: 0,
    };
    let mut configs: Vec<(&str, SystemConfig, u64)> = Vec::new();

    let mut ssp = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    ssp.workload.load = 0.9;
    configs.push(("ssp_eqf_rho09", ssp, 0xD00D));

    let mut psp = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    psp.preemptive = true;
    psp.workload.load = 0.8;
    configs.push(("psp_preemptive", psp, 0xBEEF));

    let mut hetero = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    hetero.workload.load = 0.7;
    hetero.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    hetero.network = NetworkModel::Exponential { mean: 0.25 };
    configs.push(("hetero_delayed_pipelines", hetero.clone(), 0xFEED));

    let mut mmpp = SystemConfig::combined_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    mmpp.workload.load = 0.7;
    mmpp.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    mmpp.workload.arrivals = ArrivalProcess::Mmpp2 {
        burst_ratio: 4.0,
        dwell_quiet: 300.0,
        dwell_burst: 100.0,
    };
    mmpp.network = NetworkModel::Exponential { mean: 0.25 };
    configs.push(("mmpp_hetero_adaptive", mmpp, 0xADA7));

    let mut dag = SystemConfig::ssp_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    dag.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    dag.workload.slack = SlackRange::PSP_BASELINE;
    dag.workload.load = 0.7;
    dag.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    dag.network = NetworkModel::Exponential { mean: 0.25 };
    configs.push(("dag_hetero_adaptive", dag, 0x0DA6));

    let mut abort = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    abort.overload = OverloadPolicy::AbortTardy;
    abort.policy = Policy::MinimumLaxityFirst;
    abort.workload.load = 0.9;
    configs.push(("abort_tardy_mlf", abort, 0xCAFE));

    for (name, cfg, seed) in configs {
        assert_eq!(
            cfg.network.min_hop_delay(),
            0.0,
            "{name}: golden configs are zero-lookahead by construction"
        );
        let run = RunConfig { seed, ..golden_run };
        let serial = run_once(&cfg, &run).expect("valid config");
        let sharded = run_once_sharded(&cfg, &run, 4).expect("valid config");
        assert_eq!(
            serial, sharded,
            "{name}: zero-lookahead sharded run must equal the serial (golden) run exactly"
        );
    }
}

#[test]
fn sharded_matches_serial_on_constant_network() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9;
    cfg.network = NetworkModel::Constant { delay: 1.0 };
    let run = run_cfg(0x5A4D);
    let serial = run_once(&cfg, &run).unwrap();
    for shards in [2, 4] {
        let sharded = run_once_sharded(&cfg, &run, shards).unwrap();
        assert_eq!(serial, sharded, "{shards} shards vs serial");
    }
}

#[test]
fn sharded_matches_serial_with_heterogeneity_and_preemption() {
    let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    cfg.preemptive = true;
    cfg.workload.load = 0.8;
    cfg.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    cfg.network = NetworkModel::Constant { delay: 0.5 };
    let run = run_cfg(0x9E7E);
    let serial = run_once(&cfg, &run).unwrap();
    for shards in [2, 3] {
        let sharded = run_once_sharded(&cfg, &run, shards).unwrap();
        assert_eq!(serial, sharded, "{shards} shards vs serial");
    }
}

#[test]
fn sharded_matches_serial_on_dag_tasks_over_a_delay_matrix() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    cfg.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.load = 0.7;
    cfg.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    cfg.network = positive_matrix(cfg.workload.nodes);
    assert!(cfg.network.min_hop_delay() >= 0.5);
    let run = run_cfg(0xDA61);
    let serial = run_once(&cfg, &run).unwrap();
    let sharded = run_once_sharded(&cfg, &run, 3).unwrap();
    assert_eq!(serial, sharded, "DAG + matrix network: 3 shards vs serial");
}

/// The shard count is a performance knob, never a semantic one: 1 shard
/// (the serial fallback), 2, 3 and 6 shards must produce the same bits.
#[test]
fn shard_count_never_changes_the_result() {
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.7;
    cfg.network = NetworkModel::Constant { delay: 0.75 };
    let run = run_cfg(0x1D3A);
    let one = run_once_sharded(&cfg, &run, 1).unwrap();
    for shards in [2, 3, 6] {
        let many = run_once_sharded(&cfg, &run, shards).unwrap();
        assert_eq!(one, many, "1 vs {shards} shards");
    }
    // More shards than nodes clamps to one node per shard and still
    // produces the same run.
    let oversubscribed = run_once_sharded(&cfg, &run, 64).unwrap();
    assert_eq!(one, oversubscribed, "1 vs 64 (clamped) shards");
}

/// A `Matrix` with a single zero entry has zero minimum hop delay: the
/// conservative window would have zero width, so the engine must take
/// the serial fallback (and therefore agree with `run_once` exactly).
#[test]
fn zero_lookahead_matrix_falls_back_to_serial() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    let NetworkModel::Matrix { mut delays } = positive_matrix(cfg.workload.nodes) else {
        unreachable!()
    };
    delays[2][4] = 0.0;
    cfg.network = NetworkModel::Matrix { delays };
    assert_eq!(cfg.network.min_hop_delay(), 0.0);
    let run = run_cfg(0x0F0B);
    let serial = run_once(&cfg, &run).unwrap();
    let sharded = run_once_sharded(&cfg, &run, 4).unwrap();
    assert_eq!(
        serial, sharded,
        "zero-entry matrix must fall back to serial"
    );
}

/// AbortTardy + shards: semantically divergent from serial (documented),
/// but still deterministic and shard-count invariant, with exact task
/// accounting (completed + aborted totals are consistent across counts).
#[test]
fn abort_tardy_is_shard_count_invariant() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.overload = OverloadPolicy::AbortTardy;
    cfg.workload.load = 0.95;
    cfg.network = NetworkModel::Constant { delay: 0.5 };
    let run = run_cfg(0xAB07);
    let two = run_once_sharded(&cfg, &run, 2).unwrap();
    let four = run_once_sharded(&cfg, &run, 4).unwrap();
    assert_eq!(two, four, "2 vs 4 shards under AbortTardy");
    assert!(
        two.metrics.aborted_globals > 0,
        "the overloaded firm-deadline config must actually abort tasks"
    );
}
