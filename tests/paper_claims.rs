//! Statistical reproduction checks of the paper's headline claims, run
//! at reduced scale through the public `sda` API. The experiments crate
//! has per-figure tests; these cover the claims the paper states in
//! prose, end to end.

use sda::core::{ParallelStrategy, SdaStrategy, SerialStrategy};
use sda::system::{run_replications, RunConfig, SystemConfig};

fn base_run(seed: u64) -> RunConfig {
    RunConfig {
        warmup: 1_000.0,
        duration: 25_000.0,
        seed,
        order_fuzz: 0,
    }
}

/// §4.2.1 observation 1: "Under UD and high loads, global tasks miss
/// many more deadlines than local tasks" — ≈40% vs ≈24% at load 0.5.
#[test]
fn ssp_ud_discriminates_against_globals() {
    let cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    let res = run_replications(&cfg, &base_run(101), 3).unwrap();
    let md_g = res.md_global();
    let md_l = res.md_local();
    assert!(
        md_g > md_l + 8.0,
        "MD_global ({md_g:.1}%) should far exceed MD_local ({md_l:.1}%)"
    );
    // Absolute levels in the right ballpark (paper: ≈40% / ≈24%).
    assert!((30.0..50.0).contains(&md_g), "MD_global(UD) = {md_g:.1}%");
    assert!((15.0..32.0).contains(&md_l), "MD_local(UD) = {md_l:.1}%");
}

/// §4.2.2 observation 2: "EQF significantly improves the performance of
/// global tasks, but still local tasks have a better chance" — the gap
/// narrows but does not invert.
#[test]
fn ssp_eqf_narrows_but_does_not_invert_the_gap() {
    let ud = run_replications(
        &SystemConfig::ssp_baseline(SdaStrategy::ud_ud()),
        &base_run(102),
        3,
    )
    .unwrap();
    let eqf = run_replications(
        &SystemConfig::ssp_baseline(SdaStrategy::eqf_ud()),
        &base_run(102),
        3,
    )
    .unwrap();
    assert!(
        eqf.md_global() < ud.md_global() - 4.0,
        "EQF ({:.1}%) must significantly beat UD ({:.1}%)",
        eqf.md_global(),
        ud.md_global()
    );
    assert!(
        eqf.md_global() > eqf.md_local(),
        "even EQF leaves globals slightly behind locals ({:.1}% vs {:.1}%)",
        eqf.md_global(),
        eqf.md_local()
    );
}

/// §5.3: "UD causes global tasks to miss their deadlines almost three
/// times as often as locals" (PSP baseline).
#[test]
fn psp_ud_miss_ratio_is_about_triple() {
    let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_ud());
    cfg.workload.load = 0.6;
    let res = run_replications(&cfg, &base_run(103), 3).unwrap();
    let ratio = res.md_global() / res.md_local().max(0.1);
    assert!(
        (1.8..4.5).contains(&ratio),
        "global/local miss ratio {ratio:.2} should be ≈3 (got {:.1}%/{:.1}%)",
        res.md_global(),
        res.md_local()
    );
}

/// §5.3: "DIV-1 manages to keep the miss rate of both locals and globals
/// at similar level."
#[test]
fn psp_div1_equalizes_the_classes() {
    let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    cfg.workload.load = 0.6;
    let res = run_replications(&cfg, &base_run(104), 3).unwrap();
    let gap = (res.md_global() - res.md_local()).abs();
    assert!(
        gap < 8.0,
        "DIV-1 classes should be close: {:.1}% vs {:.1}%",
        res.md_global(),
        res.md_local()
    );
}

/// §5.3: "Surprisingly, GF does further reduce MD_global by a
/// significant amount."
#[test]
fn psp_gf_beats_div1_for_globals() {
    let mk = |parallel| {
        let mut cfg = SystemConfig::psp_baseline(SdaStrategy::new(
            SerialStrategy::UltimateDeadline,
            parallel,
        ));
        cfg.workload.load = 0.7;
        run_replications(&cfg, &base_run(105), 3).unwrap()
    };
    let div1 = mk(ParallelStrategy::Div { x: 1.0 });
    let gf = mk(ParallelStrategy::GlobalsFirst);
    assert!(
        gf.md_global() < div1.md_global() - 3.0,
        "GF ({:.1}%) should significantly beat DIV-1 ({:.1}%)",
        gf.md_global(),
        div1.md_global()
    );
}

/// §6: the SSP and PSP corrections are additive — EQF-DIV1 keeps
/// MD_global close to MD_local even at high load.
#[test]
fn combined_benefits_are_additive() {
    let mk = |strategy| {
        let mut cfg = SystemConfig::combined_baseline(strategy);
        cfg.workload.load = 0.75;
        run_replications(&cfg, &base_run(106), 3).unwrap()
    };
    let udud = mk(SdaStrategy::ud_ud());
    let full = mk(SdaStrategy::eqf_div1());
    assert!(
        udud.md_global() > udud.md_local() + 8.0,
        "UD-UD gap should be wide: {:.1}% vs {:.1}%",
        udud.md_global(),
        udud.md_local()
    );
    let gap_full = full.md_global() - full.md_local();
    assert!(
        gap_full < 8.0,
        "EQF-DIV1 should hold MD_global ≈ MD_local (gap {gap_full:.1}pp)"
    );
    assert!(
        full.md_global() < udud.md_global() - 8.0,
        "EQF-DIV1 ({:.1}%) ≪ UD-UD ({:.1}%)",
        full.md_global(),
        udud.md_global()
    );
}

/// §4.2.1: "different SSP strategies miss different numbers of global
/// task deadlines, unless the load is very light" — at load 0.1 the
/// strategies are within noise of each other.
#[test]
fn light_load_makes_strategies_indistinguishable() {
    let mk = |serial| {
        let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::new(
            serial,
            ParallelStrategy::UltimateDeadline,
        ));
        cfg.workload.load = 0.1;
        run_replications(&cfg, &base_run(107), 3).unwrap()
    };
    let ud = mk(SerialStrategy::UltimateDeadline);
    let eqf = mk(SerialStrategy::EqualFlexibility);
    assert!(
        (ud.md_global() - eqf.md_global()).abs() < 3.0,
        "at load 0.1, UD ({:.1}%) ≈ EQF ({:.1}%)",
        ud.md_global(),
        eqf.md_global()
    );
}
