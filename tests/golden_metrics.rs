//! Cross-refactor golden determinism tests.
//!
//! These pin the *exact* bit patterns of seeded runs, captured on the
//! pre-refactor event loop (BinaryHeap + tombstone-set future-event list,
//! cancellation-based preemption). The slab-backed, cancellation-free hot
//! path must reproduce every one of them bit-for-bit: same arrivals, same
//! service order, same misses, same utilization integrals.
//!
//! If an *intentional* behavior change ever invalidates these, regenerate
//! with:
//!
//! ```text
//! GOLDEN_DUMP=1 cargo test --test golden_metrics -- --nocapture
//! ```
//!
//! and say so in the PR — a diff here means observable simulation behavior
//! changed, which is exactly what the file exists to catch.

use sda::core::{AdaptiveSlack, SdaStrategy};
use sda::sched::Policy;
use sda::system::{run_once, NetworkModel, OverloadPolicy, RunConfig, SystemConfig};
use sda::workload::{ArrivalProcess, GlobalShape, SlackRange};

/// The observable fingerprint of a run: every count exactly, every float
/// by bit pattern.
///
/// `transit_*` pin the network model's hand-off accounting: exactly zero
/// observations under `NetworkModel::Zero` (the delay-free path must not
/// even sample), and an exact count + bit-exact mean under a delayed
/// model.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    local_completed: u64,
    local_missed: u64,
    global_completed: u64,
    global_missed: u64,
    local_miss_pct_bits: u64,
    global_miss_pct_bits: u64,
    local_resp_mean_bits: u64,
    global_resp_mean_bits: u64,
    util0_bits: u64,
    qlen0_bits: u64,
    transit_count: u64,
    transit_mean_bits: u64,
}

fn fingerprint(cfg: &SystemConfig, seed: u64) -> Fingerprint {
    let run = RunConfig {
        warmup: 500.0,
        duration: 6_000.0,
        seed,
        order_fuzz: 0,
    };
    let r = run_once(cfg, &run).expect("config is valid");
    Fingerprint {
        local_completed: r.metrics.local.completed(),
        local_missed: r.metrics.local.missed(),
        global_completed: r.metrics.global.completed(),
        global_missed: r.metrics.global.missed(),
        local_miss_pct_bits: r.metrics.local.miss_percent().to_bits(),
        global_miss_pct_bits: r.metrics.global.miss_percent().to_bits(),
        local_resp_mean_bits: r.metrics.local.response().mean().to_bits(),
        global_resp_mean_bits: r.metrics.global.response().mean().to_bits(),
        util0_bits: r.node_utilization[0].to_bits(),
        qlen0_bits: r.node_queue_length[0].to_bits(),
        transit_count: r.metrics.transit.count(),
        transit_mean_bits: r.metrics.transit.mean().to_bits(),
    }
}

#[allow(clippy::disallowed_methods)] // GOLDEN_DUMP gates regeneration output, never the run itself
fn check(name: &str, cfg: &SystemConfig, seed: u64, expected: Fingerprint) {
    let got = fingerprint(cfg, seed);
    if std::env::var_os("GOLDEN_DUMP").is_some() {
        println!("{name}: {got:#?}");
        return;
    }
    assert_eq!(
        got, expected,
        "{name}: seeded run diverged from the pre-refactor golden fingerprint"
    );
}

#[test]
fn golden_ssp_baseline_eqf() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    cfg.workload.load = 0.9; // the regime the refactor targets
    check(
        "ssp_eqf_rho09",
        &cfg,
        0xD00D,
        Fingerprint {
            local_completed: 24257,
            local_missed: 18788,
            global_completed: 2000,
            global_missed: 1935,
            local_miss_pct_bits: 4635150752780584903,
            global_miss_pct_bits: 4636508592936058880,
            local_resp_mean_bits: 4621454732747629754,
            global_resp_mean_bits: 4628422266042203604,
            util0_bits: 4606241678459040175,
            qlen0_bits: 4617625172412484963,
            transit_count: 0,
            transit_mean_bits: 0,
        },
    );
}

#[test]
fn golden_psp_baseline_preemptive() {
    // Preemption is the path whose mechanism changes most (handle
    // cancellation → epoch invalidation): pin it hardest.
    let mut cfg = SystemConfig::psp_baseline(SdaStrategy::ud_div1());
    cfg.preemptive = true;
    cfg.workload.load = 0.8;
    check(
        "psp_preemptive",
        &cfg,
        0xBEEF,
        Fingerprint {
            local_completed: 21617,
            local_missed: 8780,
            global_completed: 1806,
            global_missed: 925,
            local_miss_pct_bits: 4630913036709785185,
            global_miss_pct_bits: 4632405132742981031,
            local_resp_mean_bits: 4616901031367378899,
            global_resp_mean_bits: 4619236402020087755,
            util0_bits: 4605446474669936584,
            qlen0_bits: 4613988704058616731,
            transit_count: 0,
            transit_mean_bits: 0,
        },
    );
}

/// The network-aware configuration the heterogeneity PR adds: a speed
/// ramp plus exponential hand-off delays on §6 pipelines. Captured when
/// the feature landed; pins the delayed-hand-off event flow, the
/// `system.network` RNG stream and the comm-aware deadline decomposition.
#[test]
fn golden_heterogeneous_delayed_pipelines() {
    // Speeds keep every node below saturation (slowest: 0.7/0.8 ≈ 0.88).
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.7;
    cfg.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    cfg.network = NetworkModel::Exponential { mean: 0.25 };
    check(
        "hetero_delayed_pipelines",
        &cfg,
        0xFEED,
        Fingerprint {
            local_completed: 18870,
            local_missed: 5715,
            global_completed: 1008,
            global_missed: 331,
            local_miss_pct_bits: 4629218016261362594,
            global_miss_pct_bits: 4629818256659262643,
            local_resp_mean_bits: 4616174296890870266,
            global_resp_mean_bits: 4624163695727701075,
            util0_bits: 4605983051061895086,
            qlen0_bits: 4617236439721488370,
            transit_count: 7065,
            transit_mean_bits: 4598181136320490097,
        },
    );
}

/// The full non-stationary configuration of the time-varying-workload
/// PR: MMPP-modulated arrivals + heterogeneous node speeds +
/// exponential hand-off delays + the feedback-adaptive `ADAPT(EQF-DIV1)`
/// strategy, on §6 pipelines. Captured when the feature landed; pins the
/// MMPP sampler's draw sequence, the feedback EWMA's pressure path and
/// the slack-scale stamping, on top of the PR-3 network machinery.
#[test]
fn golden_mmpp_hetero_adaptive() {
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    cfg.workload.load = 0.7;
    cfg.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    cfg.workload.arrivals = ArrivalProcess::Mmpp2 {
        burst_ratio: 4.0,
        dwell_quiet: 300.0,
        dwell_burst: 100.0,
    };
    cfg.network = NetworkModel::Exponential { mean: 0.25 };
    check(
        "mmpp_hetero_adaptive",
        &cfg,
        0xADA7,
        Fingerprint {
            local_completed: 19947,
            local_missed: 14495,
            global_completed: 1105,
            global_missed: 1045,
            local_miss_pct_bits: 4634813942513925283,
            global_miss_pct_bits: 4636355198626069786,
            local_resp_mean_bits: 4631949325521515562,
            global_resp_mean_bits: 4639092996488478096,
            util0_bits: 4605734792850458984,
            qlen0_bits: 4631747297989469260,
            transit_count: 7591,
            transit_mean_bits: 4598224261738701661,
        },
    );
}

/// Explicitly-disabled new features — `arrivals: Poisson` spelled out
/// and a `None` adapt wrapper — must reproduce the defaulted
/// configuration's run bit-exactly: the new surface's neutral elements
/// really are neutral. Asserted as run-equivalence (two live runs, same
/// seed) rather than against a second copy of the pinned constants, so
/// the invariant survives future fingerprint re-captures; the defaulted
/// side itself is pinned by `golden_ssp_baseline_eqf`.
#[test]
fn golden_poisson_no_adapt_reproduces_the_defaulted_run() {
    let mut defaulted = SystemConfig::ssp_baseline(SdaStrategy::eqf_ud());
    defaulted.workload.load = 0.9;

    let mut explicit = defaulted.clone();
    explicit.workload.arrivals = ArrivalProcess::Poisson;
    explicit.strategy.adapt = None;
    assert!(explicit.workload.arrivals.is_poisson());
    assert!(!explicit.strategy.is_adaptive());

    assert_eq!(
        fingerprint(&defaulted, 0xD00D),
        fingerprint(&explicit, 0xD00D),
        "explicit Poisson + disabled adaptation must be bit-identical to the defaults"
    );
}

/// The DAG-structured configuration of the critical-path-decomposition
/// PR: random layered DAGs (cross-layer edges included) on heterogeneous
/// node speeds with exponential hand-off delays under the
/// feedback-adaptive `ADAPT(EQF-DIV1)` strategy. Captured when the
/// feature landed; pins the `workload.shape` DAG sampler's draw
/// sequence, the wave-based critical-path deadline decomposition, and
/// arbitrary-fan-in hand-off routing through the network machinery.
///
/// The five pre-existing fingerprints above pin the complementary
/// invariant: introducing the DAG runtime (and routing every flat task
/// through the `PooledRun` slab) left the stage-structured paths
/// bit-identical.
#[test]
fn golden_dag_hetero_adaptive() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::adaptive(
        SdaStrategy::eqf_div1(),
        AdaptiveSlack::default(),
    ));
    cfg.workload.shape = GlobalShape::Dag {
        depth: 4,
        max_width: 3,
        edge_density: 0.4,
    };
    cfg.workload.slack = SlackRange::PSP_BASELINE;
    cfg.workload.load = 0.7;
    cfg.workload.node_speeds = Some(vec![0.8, 0.9, 0.95, 1.05, 1.1, 1.2]);
    cfg.network = NetworkModel::Exponential { mean: 0.25 };
    check(
        "dag_hetero_adaptive",
        &cfg,
        0x0DA6,
        Fingerprint {
            local_completed: 18984,
            local_missed: 6029,
            global_completed: 783,
            global_missed: 376,
            local_miss_pct_bits: 4629632390852106482,
            global_miss_pct_bits: 4631955092612386151,
            local_resp_mean_bits: 4616259696704585177,
            global_resp_mean_bits: 4626236580963470647,
            util0_bits: 4605877481407775263,
            qlen0_bits: 4616548774821373815,
            transit_count: 7054,
            transit_mean_bits: 4598216150253414276,
        },
    );
}

/// The fault-injection configuration of the fleet-churn PR: a scripted
/// outage trace (two overlapping-in-time node outages plus a repeat
/// offender) on §6 pipelines over a constant-delay network. Captured
/// when the feature landed; pins the crash/recovery event flow — queue
/// purge order, in-flight loss, re-dispatch routing and the mid-task
/// residual-deadline re-decomposition. The six fingerprints above pin
/// the complementary invariant: with `FailureModel::None` (the default)
/// the failure machinery is bit-invisible.
#[test]
fn golden_scripted_churn_pipelines() {
    use sda::system::{run_once_sharded, DownInterval, FailureModel};
    let mut cfg = SystemConfig::combined_baseline(SdaStrategy::eqf_div1());
    cfg.workload.load = 0.7;
    cfg.network = NetworkModel::Constant { delay: 0.5 };
    cfg.failure = FailureModel::Scripted {
        downs: vec![
            DownInterval {
                node: 1,
                from: 800.0,
                until: 1_400.0,
            },
            DownInterval {
                node: 4,
                from: 1_200.0,
                until: 1_600.0,
            },
            DownInterval {
                node: 1,
                from: 3_000.0,
                until: 3_200.0,
            },
        ],
    };
    check(
        "scripted_churn_pipelines",
        &cfg,
        0xFA11,
        Fingerprint {
            local_completed: 19138,
            local_missed: 6122,
            global_completed: 1075,
            global_missed: 325,
            local_miss_pct_bits: 4629697240084797074,
            global_miss_pct_bits: 4629202926280358030,
            local_resp_mean_bits: 4615467157315181813,
            global_resp_mean_bits: 4623911215783981462,
            util0_bits: 4604462674421507674,
            qlen0_bits: 4609767199342363438,
            transit_count: 7726,
            transit_mean_bits: 4602678819172646912,
        },
    );
    // The same seeded run must survive sharding bit-for-bit, whatever
    // the shard count — failures are node-local events.
    let run = RunConfig {
        warmup: 500.0,
        duration: 6_000.0,
        seed: 0xFA11,
        order_fuzz: 0,
    };
    let serial = run_once(&cfg, &run).expect("config is valid");
    assert!(serial.metrics.lost_subtasks > 0, "outages must lose work");
    for shards in [2, 3, 6] {
        let sharded = run_once_sharded(&cfg, &run, shards).expect("config is valid");
        assert_eq!(
            serial, sharded,
            "{shards}-shard churn run diverged from serial"
        );
    }
}

/// The analytic-validation configuration of the cross-validation PR:
/// the SSP baseline under FCFS at load 0.6 — a Jackson network whose
/// closed-form predictions `sda-analytic` reproduces exactly (each node
/// M/M/1 at ρ = 0.6: `Wq = 1.5`, `E[R_local] = 2.5`, serial m = 4 →
/// `E[R_global] = 4 · 2.5 = 10` by product form). Pinning the seeded
/// run alongside those theory values documents what the validation
/// harness (`tests/analytic_validation.rs`) holds the simulator to; at
/// this short horizon the sampled means sit near, not at, the
/// steady-state numbers.
#[test]
fn golden_analytic_validation_jackson() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.policy = Policy::Fcfs;
    cfg.workload.load = 0.6;
    check(
        "analytic_validation_jackson",
        &cfg,
        0xA11C,
        Fingerprint {
            local_completed: 16033,
            local_missed: 5609,
            global_completed: 1342,
            global_missed: 607,
            local_miss_pct_bits: 4630120391014888494,
            global_miss_pct_bits: 4631562514435556329,
            local_resp_mean_bits: 4612734986586190000,
            global_resp_mean_bits: 4621692084124127079,
            util0_bits: 4603611866201721270,
            qlen0_bits: 4607057521771570224,
            transit_count: 0,
            transit_mean_bits: 0,
        },
    );
}

#[test]
fn golden_abort_tardy_mlf() {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.overload = OverloadPolicy::AbortTardy;
    cfg.policy = Policy::MinimumLaxityFirst;
    cfg.workload.load = 0.9;
    check(
        "abort_tardy_mlf",
        &cfg,
        0xCAFE,
        Fingerprint {
            local_completed: 24190,
            local_missed: 9766,
            global_completed: 1969,
            global_missed: 1461,
            local_miss_pct_bits: 4630878678869144424,
            global_miss_pct_bits: 4634921784902515754,
            local_resp_mean_bits: 4610905344046963896,
            global_resp_mean_bits: 4620863787516016903,
            util0_bits: 4604746611010296125,
            qlen0_bits: 4608317110707058125,
            transit_count: 0,
            transit_mean_bits: 0,
        },
    );
}
