//! Sim-vs-theory cross-validation: on configurations where the closed
//! forms in `sda-analytic` are *exact* (M/M/1 and M/G/1 nodes, FCFS,
//! product-form pipelines at zero network delay), the simulator's
//! replicated estimates must bracket the analytic prediction within
//! their own 95% confidence half-widths.
//!
//! This is a two-sided check: it catches simulator bugs (arrivals,
//! service, miss accounting) *and* predictor bugs (rate derivation,
//! queueing formulas, slack handling) in one shot, because the two
//! implementations share nothing but the `SystemConfig`.

use sda::analytic::{predict, Prediction};
use sda::core::SdaStrategy;
use sda::sched::Policy;
use sda::sim::stats::Replications;
use sda::system::{run_replications, ReplicatedResult, RunConfig, SystemConfig};
use sda::workload::ServiceVariability;

/// Replication scale: enough horizon that finite-run bias is well below
/// the across-replication half-widths, few enough reps to stay fast in
/// debug CI.
fn run_cfg(seed: u64) -> RunConfig {
    RunConfig {
        warmup: 4_000.0,
        duration: 60_000.0,
        seed,
        order_fuzz: 0,
    }
}

const REPS: usize = 6;

/// Asserts the analytic value lies inside the replication CI.
fn assert_within_ci(what: &str, analytic: f64, reps: &Replications) {
    let ci = reps
        .confidence_interval()
        .expect("at least two replications");
    assert!(
        (analytic - ci.mean).abs() <= ci.half_width,
        "{what}: analytic {analytic:.4} outside sim CI {:.4} ± {:.4}",
        ci.mean,
        ci.half_width
    );
}

/// How strictly the *miss-ratio* prediction is held to the sim.
enum MissCheck {
    /// Exponential wait tails (M/M/1): the closed form is exact, so the
    /// analytic value must sit inside the CI like every other metric.
    Exact,
    /// Non-exponential service: the mean wait (Pollaczek–Khinchine)
    /// and second waiting moment (Takács) are exact, but the miss
    /// ratio interpolates the wait *distribution* with a two-moment
    /// gamma fit, so it gets a single modestly looser band — within 3
    /// half-widths of the replication CI.
    Approximate,
}

fn validate_locals(
    what: &str,
    cfg: &SystemConfig,
    seed: u64,
    miss: MissCheck,
) -> (Prediction, ReplicatedResult) {
    let pred = predict(cfg).unwrap_or_else(|e| panic!("{what}: predict failed: {e}"));
    assert!(!pred.saturated, "{what}: validation configs are stable");
    let sim = run_replications(cfg, &run_cfg(seed), REPS).unwrap();
    match miss {
        MissCheck::Exact => assert_within_ci(
            &format!("{what} local miss %"),
            pred.local_miss_pct,
            &sim.local_miss_pct,
        ),
        MissCheck::Approximate => {
            let ci = sim.local_miss_pct.confidence_interval().unwrap();
            let tol = 3.0 * ci.half_width;
            assert!(
                (pred.local_miss_pct - ci.mean).abs() <= tol,
                "{what} local miss %: analytic {:.2}% vs sim {:.2}% ± {:.2}%",
                pred.local_miss_pct,
                ci.mean,
                ci.half_width
            );
        }
    }
    assert_within_ci(
        &format!("{what} local response"),
        pred.local_response,
        &sim.local_response,
    );
    assert_within_ci(
        &format!("{what} utilization"),
        pred.mean_utilization,
        &sim.utilization,
    );
    (pred, sim)
}

/// Single node, locals only, FCFS: exactly an M/M/1 queue.
fn mm1_config(rho: f64) -> SystemConfig {
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.workload.nodes = 1;
    cfg.workload.frac_local = 1.0;
    cfg.workload.load = rho;
    cfg.policy = Policy::Fcfs;
    cfg
}

#[test]
fn mm1_moderate_load_matches_theory_within_ci() {
    let cfg = mm1_config(0.5);
    let (pred, _) = validate_locals("M/M/1 rho=0.5", &cfg, 0xA11C_0001, MissCheck::Exact);
    // Sanity-pin the closed forms themselves: Wq = rho/(mu-lambda) = 1,
    // E[R] = Wq + E[S] = 2 at rho = 0.5, mu = 1.
    assert!((pred.nodes[0].mean_wait - 1.0).abs() < 1e-12);
    assert!((pred.local_response - 2.0).abs() < 1e-12);
}

#[test]
fn mm1_heavy_load_matches_theory_within_ci() {
    // rho = 0.8 stresses the tail formulas where small rate errors blow
    // up: E[W] = 4, and the miss ratio is dominated by the exponential
    // wait tail.
    let cfg = mm1_config(0.8);
    let (pred, _) = validate_locals("M/M/1 rho=0.8", &cfg, 0xA11C_0002, MissCheck::Exact);
    assert!((pred.nodes[0].mean_wait - 4.0).abs() < 1e-12);
}

#[test]
fn mg1_erlang_service_matches_pollaczek_khinchine_within_ci() {
    // Erlang-4 service (SCV = 1/4) at rho = 0.6: the Allen–Cunneen
    // backbone reduces to the exact Pollaczek–Khinchine mean at c = 1
    // with Poisson arrivals, and the miss prediction rides the
    // gamma-matched tail (exact Takács second moment), so only the
    // shape interpolation beyond two moments is approximate.
    let mut cfg = mm1_config(0.6);
    cfg.workload.service = ServiceVariability::Erlang { stages: 4 };
    let (pred, _) = validate_locals(
        "M/G/1 Erlang-4 rho=0.6",
        &cfg,
        0xA11C_0003,
        MissCheck::Approximate,
    );
    // P-K: Wq = rho/(1-rho) * (1+cs2)/2 * E[S] = 1.5 * 0.625 = 0.9375.
    assert!((pred.nodes[0].mean_wait - 0.9375).abs() < 1e-12);
}

#[test]
fn homogeneous_nodes_are_independent_mm1_queues_within_ci() {
    // Six identical nodes fed only by local streams are six independent
    // M/M/1 queues; the aggregate metrics must match a single queue.
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.workload.frac_local = 1.0;
    cfg.workload.load = 0.7;
    cfg.policy = Policy::Fcfs;
    let (pred, _) = validate_locals(
        "6-node homogeneous rho=0.7",
        &cfg,
        0xA11C_0004,
        MissCheck::Exact,
    );
    for n in &pred.nodes {
        assert!((n.offered_load - 0.7).abs() < 1e-12);
    }
}

#[test]
fn jackson_pipeline_global_response_matches_theory_within_ci() {
    // The SSP baseline at load 0.5 with FCFS and zero network delay is
    // a Jackson network: every node is M/M/1 at rho = 0.5 and a serial
    // m = 4 global task's expected end-to-end response is exactly
    // 4 · E[R_node] = 8 by product form.
    let mut cfg = SystemConfig::ssp_baseline(SdaStrategy::ud_ud());
    cfg.policy = Policy::Fcfs;
    let (pred, sim) = validate_locals(
        "Jackson pipeline load=0.5",
        &cfg,
        0xA11C_0005,
        MissCheck::Exact,
    );
    assert!((pred.global_response.unwrap() - 8.0).abs() < 1e-12);
    assert_within_ci(
        "Jackson global response",
        pred.global_response.unwrap(),
        &sim.global_response,
    );
    // The global *miss* prediction is a gamma approximation of the
    // four-stage delay sum (not exact theory), so it gets a looser,
    // explicitly documented band instead of the CI check: within 3
    // half-widths or 2 points absolute, whichever is larger.
    let ci = sim.global_miss_pct.confidence_interval().unwrap();
    let tol = (3.0 * ci.half_width).max(2.0);
    let analytic = pred.global_miss_pct.unwrap();
    assert!(
        (analytic - ci.mean).abs() <= tol,
        "Jackson global miss: analytic {analytic:.2}% vs sim {:.2}% ± {:.2}%",
        ci.mean,
        ci.half_width
    );
}
